#include "rpc/flat_wire.h"

#include <cstring>

namespace adn::rpc {

namespace {

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

struct VarPayload {
  const uint8_t* data = nullptr;
  uint32_t size = 0;
};

// Inline payload + optional var-section span for one value.
bool FlattenValue(const Value& v, uint64_t& payload, uint32_t& len,
                  VarPayload& var) {
  switch (v.type()) {
    case ValueType::kNull:
      payload = 0;
      len = 0;
      return true;
    case ValueType::kBool:
      payload = v.AsBool() ? 1 : 0;
      len = 0;
      return true;
    case ValueType::kInt:
      payload = static_cast<uint64_t>(v.AsInt());
      len = 0;
      return true;
    case ValueType::kFloat: {
      double d = v.AsFloat();
      std::memcpy(&payload, &d, sizeof(payload));
      len = 0;
      return true;
    }
    case ValueType::kText: {
      std::string_view s = v.AsText();
      var.data = reinterpret_cast<const uint8_t*>(s.data());
      var.size = static_cast<uint32_t>(s.size());
      len = var.size;
      return true;
    }
    case ValueType::kBytes: {
      BytesView b = v.AsBytes();
      var.data = b.data();
      var.size = static_cast<uint32_t>(b.size());
      len = var.size;
      return true;
    }
  }
  return false;
}

}  // namespace

size_t FlatEncodedSize(const Message& m) {
  size_t total = kFlatBaseBytes + m.FieldCount() * kFlatRecordBytes + 4 +
                 m.error_detail().size();
  for (const Field& f : m.fields()) {
    if (f.value.type() == ValueType::kText) total += f.value.AsText().size();
    if (f.value.type() == ValueType::kBytes) total += f.value.AsBytes().size();
  }
  return total;
}

Status EncodeFlat(const Message& m, const MethodRegistry* methods,
                  Bytes& out) {
  if (m.FieldCount() > 0xFFFF) {
    return Status(ErrorCode::kInvalidArgument, "too many fields for u16");
  }
  uint32_t method_id = 0;
  if (methods != nullptr) {
    auto r = methods->Lookup(m.method());
    if (!r.ok()) return r.error();
    method_id = r.value();
  }
  const size_t base = out.size();
  out.resize(base + FlatEncodedSize(m));
  uint8_t* p = out.data() + base;

  p[0] = static_cast<uint8_t>(m.kind());
  PutU64(p + 1, m.id());
  PutU32(p + 9, method_id);
  PutU32(p + 13, m.source());
  PutU32(p + 17, m.destination());
  PutU16(p + 21, static_cast<uint16_t>(m.FieldCount()));

  uint8_t* rec = p + kFlatBaseBytes;
  uint8_t* var = rec + m.FieldCount() * kFlatRecordBytes;
  uint8_t* var_cursor = var;
  for (const Field& f : m.fields()) {
    uint64_t payload = 0;
    uint32_t len = 0;
    VarPayload vp;
    if (!FlattenValue(f.value, payload, len, vp)) {
      return Status(ErrorCode::kInternal, "unhandled value type");
    }
    PutU16(rec, f.id);
    rec[2] = static_cast<uint8_t>(f.value.type());
    rec[3] = 0;
    PutU32(rec + 4, len);
    if (vp.data != nullptr || len > 0) {
      // TEXT/BYTES: payload = offset of the run in the var section.
      payload = static_cast<uint64_t>(var_cursor - var);
      if (vp.size > 0) std::memcpy(var_cursor, vp.data, vp.size);
      var_cursor += vp.size;
    } else if (f.value.type() == ValueType::kText ||
               f.value.type() == ValueType::kBytes) {
      payload = static_cast<uint64_t>(var_cursor - var);
    }
    PutU64(rec + 8, payload);
    rec += kFlatRecordBytes;
  }
  PutU32(p + 23, static_cast<uint32_t>(var_cursor - var));
  uint8_t* tail = var_cursor;
  PutU32(tail, static_cast<uint32_t>(m.error_detail().size()));
  if (!m.error_detail().empty()) {
    std::memcpy(tail + 4, m.error_detail().data(), m.error_detail().size());
  }
  return Status::Ok();
}

Result<Message> DecodeFlat(std::span<const uint8_t> wire,
                           const MethodRegistry* methods,
                           common::Arena* arena) {
  ByteReader r(wire);
  Message m;
  if (arena != nullptr) m.BindArena(arena);

  ADN_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > static_cast<uint8_t>(MessageKind::kError)) {
    return Error(ErrorCode::kParseError,
                 "bad message kind " + std::to_string(kind));
  }
  m.set_kind(static_cast<MessageKind>(kind));
  ADN_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
  m.set_id(id);
  ADN_ASSIGN_OR_RETURN(uint32_t method_id, r.ReadU32());
  if (methods != nullptr) {
    ADN_ASSIGN_OR_RETURN(std::string method, methods->Reverse(method_id));
    m.set_method(std::move(method));
  }
  ADN_ASSIGN_OR_RETURN(uint32_t src, r.ReadU32());
  m.set_source(src);
  ADN_ASSIGN_OR_RETURN(uint32_t dst, r.ReadU32());
  m.set_destination(dst);
  ADN_ASSIGN_OR_RETURN(uint16_t nfields, r.ReadU16());
  ADN_ASSIGN_OR_RETURN(uint32_t var_len, r.ReadU32());

  ADN_ASSIGN_OR_RETURN(auto records,
                       r.ReadBytes(size_t{nfields} * kFlatRecordBytes));
  ADN_ASSIGN_OR_RETURN(auto var, r.ReadBytes(var_len));

  // One bulk copy of every TEXT/BYTES payload; fields then bind slices into
  // it. Heap mode (no arena) falls back to per-field owned copies.
  const uint8_t* var_base = var.data();
  if (arena != nullptr && var_len > 0) {
    var_base = arena->CopyBytes(var.data(), var_len);
  }

  ByteReader rec(records);
  for (uint16_t i = 0; i < nfields; ++i) {
    ADN_ASSIGN_OR_RETURN(uint16_t fid, rec.ReadU16());
    ADN_ASSIGN_OR_RETURN(uint8_t type, rec.ReadU8());
    if (Status s = rec.Skip(1); !s.ok()) return s.error();
    ADN_ASSIGN_OR_RETURN(uint32_t len, rec.ReadU32());
    ADN_ASSIGN_OR_RETURN(uint64_t payload, rec.ReadU64());
    if (type > static_cast<uint8_t>(ValueType::kBytes)) {
      return Error(ErrorCode::kParseError,
                   "bad flat value type " + std::to_string(type));
    }
    const ValueType vt = static_cast<ValueType>(type);
    switch (vt) {
      case ValueType::kNull:
        m.AppendField(fid, Value::Null());
        break;
      case ValueType::kBool:
        m.AppendField(fid, Value(payload != 0));
        break;
      case ValueType::kInt:
        m.AppendField(fid, Value(static_cast<int64_t>(payload)));
        break;
      case ValueType::kFloat: {
        double d;
        std::memcpy(&d, &payload, sizeof(d));
        m.AppendField(fid, Value(d));
        break;
      }
      case ValueType::kText:
      case ValueType::kBytes: {
        if (payload > var_len || len > var_len - payload) {
          return Error(ErrorCode::kParseError, "flat slice out of range");
        }
        const uint8_t* data = var_base + payload;
        if (arena != nullptr) {
          m.AppendField(fid, vt == ValueType::kText
                                 ? Value::BorrowText(
                                       reinterpret_cast<const char*>(data),
                                       len)
                                 : Value::BorrowBytes(data, len));
        } else {
          m.AppendField(
              fid, vt == ValueType::kText
                       ? Value(std::string_view(
                             reinterpret_cast<const char*>(data), len))
                       : Value(Bytes(data, data + len)));
        }
        break;
      }
    }
  }

  ADN_ASSIGN_OR_RETURN(uint32_t err_len, r.ReadU32());
  if (err_len > 0) {
    ADN_ASSIGN_OR_RETURN(auto err, r.ReadBytes(err_len));
    m.set_error_detail(std::string(AsStringView(err)));
  }
  return m;
}

Status EncodeFieldsFlat(const Message& m, Bytes& out) {
  if (m.FieldCount() > 0xFFFF) {
    return Status(ErrorCode::kInvalidArgument, "too many fields for u16");
  }
  size_t var_total = 0;
  for (const Field& f : m.fields()) {
    if (f.value.type() == ValueType::kText) var_total += f.value.AsText().size();
    if (f.value.type() == ValueType::kBytes) {
      var_total += f.value.AsBytes().size();
    }
  }
  const size_t base = out.size();
  out.resize(base + 6 + m.FieldCount() * kFlatRecordBytes + var_total);
  uint8_t* p = out.data() + base;
  PutU16(p, static_cast<uint16_t>(m.FieldCount()));
  PutU32(p + 2, static_cast<uint32_t>(var_total));
  uint8_t* rec = p + 6;
  uint8_t* var = rec + m.FieldCount() * kFlatRecordBytes;
  uint8_t* var_cursor = var;
  for (const Field& f : m.fields()) {
    uint64_t payload = 0;
    uint32_t len = 0;
    VarPayload vp;
    if (!FlattenValue(f.value, payload, len, vp)) {
      return Status(ErrorCode::kInternal, "unhandled value type");
    }
    PutU16(rec, f.id);
    rec[2] = static_cast<uint8_t>(f.value.type());
    rec[3] = 0;
    PutU32(rec + 4, len);
    if (f.value.type() == ValueType::kText ||
        f.value.type() == ValueType::kBytes) {
      payload = static_cast<uint64_t>(var_cursor - var);
      if (vp.size > 0) std::memcpy(var_cursor, vp.data, vp.size);
      var_cursor += vp.size;
    }
    PutU64(rec + 8, payload);
    rec += kFlatRecordBytes;
  }
  return Status::Ok();
}

Status DecodeFieldsFlatInto(std::span<const uint8_t> wire, Message& m) {
  ByteReader r(wire);
  ADN_ASSIGN_OR_RETURN(uint16_t nfields, r.ReadU16());
  ADN_ASSIGN_OR_RETURN(uint32_t var_len, r.ReadU32());
  ADN_ASSIGN_OR_RETURN(auto records,
                       r.ReadBytes(size_t{nfields} * kFlatRecordBytes));
  ADN_ASSIGN_OR_RETURN(auto var, r.ReadBytes(var_len));

  common::Arena* arena = m.arena();
  const uint8_t* var_base = var.data();
  if (arena != nullptr && var_len > 0) {
    var_base = arena->CopyBytes(var.data(), var_len);
  }

  // Destroy the current fields in place (allocation-free), then graft the
  // decoded ones.
  m.ProjectFields({});
  ByteReader rec(records);
  for (uint16_t i = 0; i < nfields; ++i) {
    ADN_ASSIGN_OR_RETURN(uint16_t fid, rec.ReadU16());
    ADN_ASSIGN_OR_RETURN(uint8_t type, rec.ReadU8());
    if (Status s = rec.Skip(1); !s.ok()) return s.error();
    ADN_ASSIGN_OR_RETURN(uint32_t len, rec.ReadU32());
    ADN_ASSIGN_OR_RETURN(uint64_t payload, rec.ReadU64());
    if (type > static_cast<uint8_t>(ValueType::kBytes)) {
      return Error(ErrorCode::kParseError,
                   "bad flat value type " + std::to_string(type));
    }
    const ValueType vt = static_cast<ValueType>(type);
    switch (vt) {
      case ValueType::kNull:
        m.AppendField(fid, Value::Null());
        break;
      case ValueType::kBool:
        m.AppendField(fid, Value(payload != 0));
        break;
      case ValueType::kInt:
        m.AppendField(fid, Value(static_cast<int64_t>(payload)));
        break;
      case ValueType::kFloat: {
        double d;
        std::memcpy(&d, &payload, sizeof(d));
        m.AppendField(fid, Value(d));
        break;
      }
      case ValueType::kText:
      case ValueType::kBytes: {
        if (payload > var_len || len > var_len - payload) {
          return Error(ErrorCode::kParseError, "flat slice out of range");
        }
        const uint8_t* data = var_base + payload;
        if (arena != nullptr) {
          m.AppendField(fid, vt == ValueType::kText
                                 ? Value::BorrowText(
                                       reinterpret_cast<const char*>(data),
                                       len)
                                 : Value::BorrowBytes(data, len));
        } else {
          m.AppendField(
              fid, vt == ValueType::kText
                       ? Value(std::string_view(
                             reinterpret_cast<const char*>(data), len))
                       : Value(Bytes(data, data + len)));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

}  // namespace adn::rpc
