// Flat wire format: the on-the-wire twin of the flat in-memory Message.
//
// Where AdnWireCodec encodes a compiler-chosen HeaderSpec positionally
// (per-link minimal headers, variable-width cells), the flat format is the
// *memory layout* serialized: a fixed base header, one fixed-width 16-byte
// record per field carrying the interned FieldId + type + an inline payload
// (numerics) or an (offset, length) slice into a trailing variable section
// (TEXT/BYTES) — exactly how an arena-backed Message lays fields out. That
// makes encode a sequence of bulk copies with no per-field heap traffic, and
// decode — given an arena — ONE memcpy of the variable section plus slice
// binding: the decoded message borrows its TEXT/BYTES payloads straight from
// the arena copy (zero per-field allocations).
//
//   [u8 kind][u64 id][u32 method_id][u32 src][u32 dst]    <- 21-byte base
//   [u16 nfields][u32 var_len]                            <- 6 bytes
//   nfields x [u16 fid][u8 type][u8 0][u32 len][u64 payload]
//   [var_len bytes of TEXT/BYTES payloads]
//   [u32 err_len][err_len bytes]                          <- error detail
//
// FieldIds on the wire are the process-global interned ids — the flat format
// is an intra-deployment format where both ends share the compiler's intern
// table (the paper's premise: the controller distributes the chain and its
// schemas). Cross-process use without a shared table must exchange the
// interner contents out of band.
#pragma once

#include <span>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/status.h"
#include "rpc/message.h"
#include "rpc/wire.h"

namespace adn::rpc {

// Bytes before the per-field records.
inline constexpr size_t kFlatBaseBytes = HeaderSpec::kBaseHeaderBytes + 2 + 4;
// Fixed bytes per field record.
inline constexpr size_t kFlatRecordBytes = 16;

// Appends the flat encoding of `m` to `out`. `methods` may be null (method
// id 0 is written and the method name is dropped, mirroring AdnWireCodec).
Status EncodeFlat(const Message& m, const MethodRegistry* methods, Bytes& out);

// Decodes a flat frame. With `arena` non-null the variable section is copied
// into the arena once and TEXT/BYTES fields are bound as slices (the decoded
// message is arena-backed and must not outlive the arena's next Reset);
// with a null arena every payload is an owned heap copy.
Result<Message> DecodeFlat(std::span<const uint8_t> wire,
                           const MethodRegistry* methods,
                           common::Arena* arena = nullptr);

// Exact encoded size of `m` in the flat format (frame sizing / cost models).
size_t FlatEncodedSize(const Message& m);

// --- Fields-only framing (response cache blobs) ----------------------------
// The cache element stores responses as field sections without the base
// header: the hit path grafts the cached fields onto the live request
// message, whose id/method/endpoints must survive the rewrite.
//   [u16 nfields][u32 var_len]
//   nfields x [u16 fid][u8 type][u8 0][u32 len][u64 payload]
//   [var_len bytes]
// Appends the section for `m`'s fields to `out`.
Status EncodeFieldsFlat(const Message& m, Bytes& out);
// Replaces `m`'s fields with the decoded section; metadata is untouched.
// Arena-backed messages get one bulk arena copy plus slice binding (zero
// heap allocations); heap messages get per-field owned copies.
Status DecodeFieldsFlatInto(std::span<const uint8_t> wire, Message& m);

}  // namespace adn::rpc
