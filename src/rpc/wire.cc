#include "rpc/wire.h"

namespace adn::rpc {

namespace {
// Cell tags: 0 = NULL, 1 = present (type comes from the spec).
constexpr uint8_t kCellNull = 0;
constexpr uint8_t kCellPresent = 1;
}  // namespace

void HeaderSpec::ResolveFieldIds() {
  if (field_ids.size() == fields.size()) return;
  field_ids.clear();
  field_ids.reserve(fields.size());
  for (const Column& c : fields) {
    field_ids.push_back(InternFieldName(c.name));
  }
}

size_t HeaderSpec::MaxEncodedSize(const Message& m) const {
  size_t total = kBaseHeaderBytes;
  for (const Column& c : fields) {
    const Value& v = m.GetFieldOrNull(c.name);
    total += 1 + v.EncodedSizeHint();
  }
  return total;
}

std::string HeaderSpec::DebugString() const {
  std::string out = "HeaderSpec[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields[i].name;
    out += ":";
    out += ValueTypeName(fields[i].type);
  }
  out += "]";
  return out;
}

uint32_t MethodRegistry::Intern(std::string_view method) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == method) return static_cast<uint32_t>(i);
  }
  names_.emplace_back(method);
  return static_cast<uint32_t>(names_.size() - 1);
}

Result<uint32_t> MethodRegistry::Lookup(std::string_view method) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == method) return static_cast<uint32_t>(i);
  }
  return Error(ErrorCode::kNotFound,
               "method '" + std::string(method) + "' not registered");
}

Result<std::string> MethodRegistry::Reverse(uint32_t id) const {
  if (id >= names_.size()) {
    return Error(ErrorCode::kNotFound,
                 "method id " + std::to_string(id) + " not registered");
  }
  return names_[id];
}

void EncodeValue(const Value& v, ByteWriter& w) {
  if (v.is_null()) {
    w.WriteU8(kCellNull);
    return;
  }
  w.WriteU8(kCellPresent);
  switch (v.type()) {
    case ValueType::kNull:
      break;  // unreachable, handled above
    case ValueType::kBool:
      w.WriteU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      w.WriteSignedVarint(v.AsInt());
      break;
    case ValueType::kFloat:
      w.WriteF64(v.AsFloat());
      break;
    case ValueType::kText:
      w.WriteString(v.AsText());
      break;
    case ValueType::kBytes:
      w.WriteLengthPrefixed(v.AsBytes());
      break;
  }
}

Result<Value> DecodeValue(ValueType declared, ByteReader& r) {
  ADN_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
  if (tag == kCellNull) return Value::Null();
  if (tag != kCellPresent) {
    return Error(ErrorCode::kParseError,
                 "bad cell tag " + std::to_string(tag));
  }
  switch (declared) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      ADN_ASSIGN_OR_RETURN(uint8_t b, r.ReadU8());
      return Value(b != 0);
    }
    case ValueType::kInt: {
      ADN_ASSIGN_OR_RETURN(int64_t i, r.ReadSignedVarint());
      return Value(i);
    }
    case ValueType::kFloat: {
      ADN_ASSIGN_OR_RETURN(double d, r.ReadF64());
      return Value(d);
    }
    case ValueType::kText: {
      ADN_ASSIGN_OR_RETURN(std::string s, r.ReadString());
      return Value(std::move(s));
    }
    case ValueType::kBytes: {
      ADN_ASSIGN_OR_RETURN(auto span, r.ReadLengthPrefixed());
      return Value(Bytes(span.begin(), span.end()));
    }
  }
  return Error(ErrorCode::kInternal, "unhandled declared type");
}

Status AdnWireCodec::Encode(const Message& m, Bytes& out) const {
  ByteWriter w(out);
  w.WriteU8(static_cast<uint8_t>(m.kind()));
  w.WriteU64(m.id());
  uint32_t method_id = 0;
  if (methods_ != nullptr) {
    auto r = methods_->Lookup(m.method());
    if (!r.ok()) return r.error();
    method_id = r.value();
  }
  w.WriteU32(method_id);
  w.WriteU32(m.source());
  w.WriteU32(m.destination());
  for (size_t i = 0; i < spec_.fields.size(); ++i) {
    const Column& c = spec_.fields[i];
    const Value& v = m.GetFieldOrNull(spec_.field_ids[i]);
    if (!v.is_null() && v.type() != c.type) {
      return Status(ErrorCode::kTypeError,
                    "field '" + c.name + "' has type " +
                        std::string(ValueTypeName(v.type())) +
                        ", spec expects " +
                        std::string(ValueTypeName(c.type)));
    }
    EncodeValue(v, w);
  }
  if (m.kind() == MessageKind::kError) {
    ByteWriter(out).WriteString(m.error_detail());
  }
  return Status::Ok();
}

Result<Message> AdnWireCodec::Decode(std::span<const uint8_t> wire) const {
  ByteReader r(wire);
  Message m;
  ADN_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > static_cast<uint8_t>(MessageKind::kError)) {
    return Error(ErrorCode::kParseError,
                 "bad message kind " + std::to_string(kind));
  }
  m.set_kind(static_cast<MessageKind>(kind));
  ADN_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
  m.set_id(id);
  ADN_ASSIGN_OR_RETURN(uint32_t method_id, r.ReadU32());
  if (methods_ != nullptr) {
    ADN_ASSIGN_OR_RETURN(std::string method, methods_->Reverse(method_id));
    m.set_method(std::move(method));
  }
  ADN_ASSIGN_OR_RETURN(uint32_t src, r.ReadU32());
  m.set_source(src);
  ADN_ASSIGN_OR_RETURN(uint32_t dst, r.ReadU32());
  m.set_destination(dst);
  for (size_t i = 0; i < spec_.fields.size(); ++i) {
    ADN_ASSIGN_OR_RETURN(Value v, DecodeValue(spec_.fields[i].type, r));
    if (!v.is_null()) m.SetField(spec_.field_ids[i], std::move(v));
  }
  if (m.kind() == MessageKind::kError) {
    ADN_ASSIGN_OR_RETURN(std::string detail, r.ReadString());
    m.set_error_detail(std::move(detail));
  }
  return m;
}

}  // namespace adn::rpc
