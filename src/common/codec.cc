#include "common/codec.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/strings.h"

namespace adn {

namespace {

// --- LZ77 ------------------------------------------------------------------
// Token stream grammar:
//   0x00 len  <len literal bytes>          literal run (len = varint)
//   0x01 dist len                          match (varints), dist in [1,65535]
constexpr size_t kWindow = 65535;
constexpr size_t kMinMatch = 4;
constexpr size_t kHashSize = 1 << 14;

uint32_t HashQuad(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 18;  // top 14 bits
}

}  // namespace

Bytes CompressBytes(std::span<const uint8_t> input) {
  Bytes out;
  ByteWriter w(out);
  w.WriteVarint(input.size());
  if (input.empty()) return out;

  std::array<int64_t, kHashSize> head;
  head.fill(-1);

  size_t i = 0;
  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      w.WriteU8(0x00);
      w.WriteVarint(end - literal_start);
      w.WriteBytes(input.subspan(literal_start, end - literal_start));
    }
  };

  while (i + kMinMatch <= input.size()) {
    uint32_t h = HashQuad(&input[i]);
    int64_t cand = head[h];
    head[h] = static_cast<int64_t>(i);

    size_t best_len = 0;
    size_t best_dist = 0;
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow &&
        std::memcmp(&input[static_cast<size_t>(cand)], &input[i], kMinMatch) ==
            0) {
      size_t len = kMinMatch;
      size_t max_len = input.size() - i;
      const uint8_t* a = &input[static_cast<size_t>(cand)];
      const uint8_t* b = &input[i];
      while (len < max_len && a[len] == b[len]) ++len;
      best_len = len;
      best_dist = i - static_cast<size_t>(cand);
    }

    if (best_len >= kMinMatch) {
      flush_literals(i);
      w.WriteU8(0x01);
      w.WriteVarint(best_dist);
      w.WriteVarint(best_len);
      // Insert hash entries inside the match so later data can reference it.
      size_t stop = std::min(i + best_len, input.size() - kMinMatch);
      for (size_t j = i + 1; j < stop; ++j) {
        head[HashQuad(&input[j])] = static_cast<int64_t>(j);
      }
      i += best_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(input.size());
  return out;
}

Result<Bytes> DecompressBytes(std::span<const uint8_t> compressed) {
  ByteReader r(compressed);
  ADN_ASSIGN_OR_RETURN(uint64_t original_size, r.ReadVarint());
  // Bound the up-front reservation: a corrupt or adversarial stream may
  // declare an absurd size. Growth beyond the declared size is rejected
  // below either way.
  Bytes out;
  out.reserve(static_cast<size_t>(
      std::min<uint64_t>(original_size, 1 << 20)));
  while (!r.AtEnd() && out.size() < original_size) {
    ADN_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    if (tag == 0x00) {
      ADN_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
      if (out.size() + len > original_size) {
        return Error(ErrorCode::kParseError,
                     "corrupt compressed stream: literals overrun size");
      }
      ADN_ASSIGN_OR_RETURN(auto lit, r.ReadBytes(len));
      out.insert(out.end(), lit.begin(), lit.end());
    } else if (tag == 0x01) {
      ADN_ASSIGN_OR_RETURN(uint64_t dist, r.ReadVarint());
      ADN_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
      if (dist == 0 || dist > out.size()) {
        return Error(ErrorCode::kParseError,
                     "corrupt compressed stream: bad match distance");
      }
      if (out.size() + len > original_size) {
        return Error(ErrorCode::kParseError,
                     "corrupt compressed stream: match overruns size");
      }
      // Byte-by-byte copy: overlapping matches are legal (RLE-style).
      size_t src = out.size() - dist;
      for (uint64_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    } else {
      return Error(ErrorCode::kParseError,
                   "corrupt compressed stream: unknown token");
    }
  }
  if (out.size() != original_size) {
    return Error(ErrorCode::kParseError,
                 "corrupt compressed stream: size mismatch (" +
                     std::to_string(out.size()) + " vs declared " +
                     std::to_string(original_size) + ")");
  }
  return out;
}

// --- XTEA-CTR ----------------------------------------------------------------
namespace {

struct XteaKey {
  uint32_t k[4];
};

XteaKey DeriveKey(std::string_view key) {
  XteaKey out;
  uint64_t h1 = Fnv1a64(key);
  // Second lane: hash with a domain separator so k[2..3] differ from k[0..1].
  std::string salted = std::string(key) + "#adn-key-lane2";
  uint64_t h2 = Fnv1a64(salted);
  out.k[0] = static_cast<uint32_t>(h1);
  out.k[1] = static_cast<uint32_t>(h1 >> 32);
  out.k[2] = static_cast<uint32_t>(h2);
  out.k[3] = static_cast<uint32_t>(h2 >> 32);
  return out;
}

// One XTEA block encryption (64 rounds standard).
uint64_t XteaEncryptBlock(uint64_t block, const XteaKey& key) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  uint32_t sum = 0;
  constexpr uint32_t kDelta = 0x9E3779B9;
  for (int round = 0; round < 32; ++round) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.k[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key.k[(sum >> 11) & 3]);
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

void XorKeystream(std::span<const uint8_t> in, Bytes& out, const XteaKey& key,
                  uint64_t nonce) {
  for (size_t i = 0; i < in.size(); i += 8) {
    uint64_t counter = nonce ^ (static_cast<uint64_t>(i / 8) * 0x9E3779B97F4A7C15ULL);
    uint64_t ks = XteaEncryptBlock(counter, key);
    size_t n = std::min<size_t>(8, in.size() - i);
    for (size_t j = 0; j < n; ++j) {
      out.push_back(in[i + j] ^ static_cast<uint8_t>(ks >> (8 * j)));
    }
  }
}

}  // namespace

Bytes EncryptBytes(std::span<const uint8_t> plaintext, std::string_view key,
                   uint64_t nonce) {
  Bytes out;
  out.reserve(plaintext.size() + 8);
  ByteWriter w(out);
  w.WriteU64(nonce);
  XorKeystream(plaintext, out, DeriveKey(key), nonce);
  return out;
}

Result<Bytes> DecryptBytes(std::span<const uint8_t> ciphertext,
                           std::string_view key) {
  ByteReader r(ciphertext);
  ADN_ASSIGN_OR_RETURN(uint64_t nonce, r.ReadU64());
  Bytes out;
  out.reserve(ciphertext.size() - 8);
  XorKeystream(ciphertext.subspan(8), out, DeriveKey(key), nonce);
  return out;
}

// --- CRC32C ------------------------------------------------------------------
uint32_t Crc32c(std::span<const uint8_t> data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : data) {
    crc = (crc >> 8) ^ table[(crc ^ b) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace adn
