// Counting operator-new replacement; see alloc_stats.h. Built only into the
// adn_alloc_hooks object library (with ADN_COUNT_ALLOCS defined) so that
// regular binaries keep the stock allocator. Replacement functions must have
// external linkage and must not be inline — they replace the C++ runtime's
// definitions binary-wide.
#include "common/alloc_stats.h"

#ifdef ADN_COUNT_ALLOCS

#include <cstdlib>
#include <new>

namespace {

struct HooksRegistrar {
  HooksRegistrar() {
    adn::common::alloc_stats::internal::HooksLive().store(
        true, std::memory_order_relaxed);
  }
};
HooksRegistrar hooks_registrar;

void* CountedAlloc(std::size_t size) {
  adn::common::alloc_stats::internal::AllocCount().fetch_add(
      1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  adn::common::alloc_stats::internal::AllocCount().fetch_add(
      1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of alignment.
  size = (size + align - 1) / align * align;
  return std::aligned_alloc(align, size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // ADN_COUNT_ALLOCS
