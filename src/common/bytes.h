// Byte-buffer primitives shared by every wire format in the repo.
//
// ByteWriter appends into a caller-owned std::vector<uint8_t>; ByteReader is
// a non-owning, bounds-checked cursor over a span of bytes. Both support the
// encodings used by our codecs: fixed-width little-endian integers, LEB128
// varints (protobuf-style), zig-zag signed varints, and length-prefixed
// strings. Readers never throw; every Read* reports failure via Result.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace adn {

using Bytes = std::vector<uint8_t>;

// Non-owning view over a byte run — what Value::AsBytes() returns so that
// arena-slice values (zero-allocation message path) and owned Bytes read
// identically at call sites. Converts to std::span for codec helpers and
// compares against Bytes for tests.
class BytesView {
 public:
  constexpr BytesView() = default;
  constexpr BytesView(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  BytesView(const Bytes& b) : data_(b.data()), size_(b.size()) {}  // NOLINT

  constexpr const uint8_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const uint8_t* begin() const { return data_; }
  constexpr const uint8_t* end() const { return data_ + size_; }
  constexpr uint8_t operator[](size_t i) const { return data_[i]; }

  constexpr operator std::span<const uint8_t>() const {  // NOLINT
    return {data_, size_};
  }

  Bytes ToBytes() const { return Bytes(begin(), end()); }

  friend bool operator==(const BytesView& a, const BytesView& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(const BytesView& a, const Bytes& b) {
    return a == BytesView(b);
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void WriteU8(uint8_t v) { out_.push_back(v); }
  void WriteU16(uint16_t v) { AppendLittleEndian(v, 2); }
  void WriteU32(uint32_t v) { AppendLittleEndian(v, 4); }
  void WriteU64(uint64_t v) { AppendLittleEndian(v, 8); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  // LEB128 unsigned varint, 1-10 bytes.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<uint8_t>(v));
  }

  // Zig-zag then varint; small magnitudes stay small either sign.
  void WriteSignedVarint(int64_t v) {
    WriteVarint((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  void WriteBytes(std::span<const uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  void WriteLengthPrefixed(std::span<const uint8_t> data) {
    WriteVarint(data.size());
    WriteBytes(data);
  }

  void WriteString(std::string_view s) {
    WriteLengthPrefixed({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }

  size_t size() const { return out_.size(); }

  // Patch a previously reserved fixed-width slot (e.g. a frame length field).
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(v >> (8 * i));
    }
  }

 private:
  void AppendLittleEndian(uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Underflow("u8");
    return data_[pos_++];
  }
  Result<uint16_t> ReadU16() { return ReadLittleEndian<uint16_t>(2, "u16"); }
  Result<uint32_t> ReadU32() { return ReadLittleEndian<uint32_t>(4, "u32"); }
  Result<uint64_t> ReadU64() { return ReadLittleEndian<uint64_t>(8, "u64"); }

  Result<int64_t> ReadI64() {
    ADN_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    return static_cast<int64_t>(bits);
  }

  Result<double> ReadF64() {
    ADN_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return Underflow("varint");
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    return Error(ErrorCode::kParseError, "varint longer than 10 bytes");
  }

  Result<int64_t> ReadSignedVarint() {
    ADN_ASSIGN_OR_RETURN(uint64_t z, ReadVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<std::span<const uint8_t>> ReadBytes(size_t n) {
    if (remaining() < n) return Underflow("bytes");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Result<std::span<const uint8_t>> ReadLengthPrefixed() {
    ADN_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > remaining()) return Underflow("length-prefixed payload");
    return ReadBytes(n);
  }

  Result<std::string> ReadString() {
    ADN_ASSIGN_OR_RETURN(auto span, ReadLengthPrefixed());
    return std::string(reinterpret_cast<const char*>(span.data()),
                       span.size());
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Status(Underflow("skip"));
    pos_ += n;
    return Status::Ok();
  }

 private:
  template <typename T>
  Result<T> ReadLittleEndian(int n, const char* what) {
    if (remaining() < static_cast<size_t>(n)) return Underflow(what);
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<size_t>(n);
    return static_cast<T>(v);
  }

  Error Underflow(const char* what) const {
    return Error(ErrorCode::kParseError,
                 std::string("buffer underflow reading ") + what);
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string_view AsStringView(std::span<const uint8_t> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace adn
