#include "common/arena.h"

namespace adn::common {

Arena::Arena(size_t slab_bytes) : slab_bytes_(slab_bytes == 0 ? 1 : slab_bytes) {
  AddSlab(slab_bytes_);
}

void Arena::AddSlab(size_t capacity) {
  Slab slab;
  slab.data = std::make_unique<uint8_t[]>(capacity);
  slab.capacity = capacity;
  slabs_.push_back(std::move(slab));
}

void* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) size = 1;
  for (;;) {
    Slab& slab = slabs_[current_];
    size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    if (aligned + size <= slab.capacity) {
      offset_ = aligned + size;
      return slab.data.get() + aligned;
    }
    if (current_ + 1 < slabs_.size()) {
      // Advance into an already-reserved slab (post-Reset reuse).
      ++current_;
      offset_ = 0;
      continue;
    }
    AddSlab(size > slab_bytes_ ? size + align : slab_bytes_);
    ++current_;
    offset_ = 0;
  }
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
}

size_t Arena::bytes_used() const {
  size_t total = offset_;
  for (size_t i = 0; i < current_; ++i) total += slabs_[i].capacity;
  return total;
}

size_t Arena::bytes_reserved() const {
  size_t total = 0;
  for (const Slab& s : slabs_) total += s.capacity;
  return total;
}

ArenaPool::ArenaPool(size_t slab_bytes) : slab_bytes_(slab_bytes) {}

ArenaPool::~ArenaPool() = default;

Arena* ArenaPool::Acquire() {
  // Single-consumer pop: only this thread removes nodes, so head->next_free_
  // is stable between the load and the CAS (pushes only change head itself).
  Arena* head = free_head_.load(std::memory_order_acquire);
  while (head != nullptr) {
    if (free_head_.compare_exchange_weak(head, head->next_free_,
                                         std::memory_order_acquire,
                                         std::memory_order_acquire)) {
      head->next_free_ = nullptr;
      reused_.fetch_add(1, std::memory_order_relaxed);
      return head;
    }
  }
  auto arena = std::make_unique<Arena>(slab_bytes_);
  arena->home_pool_ = this;
  Arena* raw = arena.get();
  {
    std::lock_guard<std::mutex> lock(all_mu_);
    all_.push_back(std::move(arena));
  }
  created_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

void ArenaPool::Release(Arena* arena) {
  if (arena == nullptr) return;
  arena->Reset();
  Arena* head = free_head_.load(std::memory_order_relaxed);
  do {
    arena->next_free_ = head;
  } while (!free_head_.compare_exchange_weak(head, arena,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
}

}  // namespace adn::common
