// Deterministic pseudo-random numbers for simulations and property tests.
//
// All randomized behaviour in the repo (fault injection probabilities,
// workload generators, property-test inputs) flows through Rng so that every
// experiment is reproducible from a seed. xoshiro256** under the hood.
#pragma once

#include <cstdint>
#include <limits>

namespace adn {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; simple rejection.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

  // Inclusive integer range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Exponential inter-arrival with the given mean (for Poisson workloads).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * Log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double Log(double x);

  uint64_t state_[4];
};

}  // namespace adn
