#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace adn {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreAsciiCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

}  // namespace adn
