#include "common/status.h"

namespace adn {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kParseError: return "ParseError";
    case ErrorCode::kTypeError: return "TypeError";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kInternal: return "Internal";
  }
  return "UnknownError";
}

std::string Error::ToString() const {
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace adn
