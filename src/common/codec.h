// Real byte-transform implementations backing the ADN user-defined functions
// compress/decompress/encrypt/decrypt (paper §5.1: "operations like
// compression and encryption ... modeled as user-defined functions for which
// developers provide platform-specific implementations").
//
// These run for real on actual bytes — both in unit tests and inside the
// simulated processors — so payload-size-dependent behaviour (Figure 2's
// "don't compress the field the load balancer reads" reordering) is exercised
// by genuine code, not a cost-model fiction.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace adn {

// LZ-class byte compressor (greedy LZ77 with a 64Ki window and a small hash
// chain). Format: varint original size, then a token stream of literal runs
// and (distance, length) matches. Self-contained and deterministic.
Bytes CompressBytes(std::span<const uint8_t> input);
Result<Bytes> DecompressBytes(std::span<const uint8_t> compressed);

// XTEA-CTR stream cipher. Key material is derived from `key` via FNV-based
// expansion; the nonce is carried in the first 8 output bytes. Encryption and
// decryption are length-preserving modulo the 8-byte nonce prefix.
Bytes EncryptBytes(std::span<const uint8_t> plaintext, std::string_view key,
                   uint64_t nonce);
Result<Bytes> DecryptBytes(std::span<const uint8_t> ciphertext,
                           std::string_view key);

// CRC32C (software, table-driven) — used for optional integrity trailers.
uint32_t Crc32c(std::span<const uint8_t> data);

}  // namespace adn
