// Slab arena allocator for the zero-allocation message path.
//
// The engine tier's steady-state cost model (ROADMAP "zero-allocation
// message path") wants every per-message byte — the flattened field array
// and TEXT/BYTES payloads — to come from a bump pointer, not the global
// heap. An Arena is a chain of fixed-size slabs with a bump cursor;
// Reset() rewinds the cursor and keeps the slabs, so after a short warmup
// an Arena serves any number of messages without touching malloc.
//
// ArenaPool recycles whole arenas across threads: a producer leases one
// arena per message (Acquire), the message carries the lease through the
// SPSC ring, and whichever worker destroys the message pushes the arena
// back on a lock-free Treiber free list (Release). The pool's concurrency
// contract mirrors the data plane's shape:
//  - Release() may be called from ANY thread (multi-producer push);
//  - Acquire() must be called from ONE thread at a time (single consumer),
//    which sidesteps the classic ABA pop hazard: only the acquirer removes
//    nodes, so a node's `next` cannot be recycled under a concurrent pop.
// The pool owns every arena it ever created and frees them on destruction;
// it must therefore outlive all messages leasing from it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace adn::common {

class ArenaPool;

class Arena {
 public:
  static constexpr size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocate `size` bytes aligned to `align` (power of two). Grows a
  // new slab when the current one is exhausted; requests larger than the
  // slab size get a dedicated slab.
  void* Allocate(size_t size, size_t align);

  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Copy `s` into the arena; the returned view lives until Reset().
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return {static_cast<const char*>(nullptr), size_t{0}};
    char* p = AllocateArray<char>(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  const uint8_t* CopyBytes(const uint8_t* data, size_t size) {
    if (size == 0) return nullptr;
    auto* p = AllocateArray<uint8_t>(size);
    std::memcpy(p, data, size);
    return p;
  }

  // Rewind the bump cursor; slabs are retained for reuse. Invalidates every
  // pointer previously handed out.
  void Reset();

  size_t slab_count() const { return slabs_.size(); }
  size_t bytes_used() const;
  size_t bytes_reserved() const;

  // The pool this arena was leased from (null for free-standing arenas).
  ArenaPool* home_pool() const { return home_pool_; }

 private:
  friend class ArenaPool;

  struct Slab {
    std::unique_ptr<uint8_t[]> data;
    size_t capacity = 0;
  };

  void AddSlab(size_t capacity);

  std::vector<Slab> slabs_;
  size_t current_ = 0;  // index of the slab the cursor is in
  size_t offset_ = 0;   // bump cursor within slabs_[current_]
  size_t slab_bytes_;

  // Intrusive free-list link + owner, managed by ArenaPool.
  Arena* next_free_ = nullptr;
  ArenaPool* home_pool_ = nullptr;
};

class ArenaPool {
 public:
  explicit ArenaPool(size_t slab_bytes = Arena::kDefaultSlabBytes);
  ~ArenaPool();

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  // Lease an arena (recycled when available, freshly created otherwise).
  // Single-consumer: call from one thread at a time.
  Arena* Acquire();

  // Return a leased arena; it is Reset() and made available to Acquire().
  // Thread-safe: any number of threads may release concurrently.
  void Release(Arena* arena);

  // Arenas ever created (== heap allocations the pool has performed).
  uint64_t created() const { return created_.load(std::memory_order_relaxed); }
  // Acquire() calls served from the free list instead of the heap.
  uint64_t reused() const { return reused_.load(std::memory_order_relaxed); }

 private:
  const size_t slab_bytes_;
  std::atomic<Arena*> free_head_{nullptr};
  std::atomic<uint64_t> created_{0};
  std::atomic<uint64_t> reused_{0};
  // Every arena ever created, for destruction. Guarded: Acquire is single-
  // threaded by contract but pool creation stats are read from anywhere.
  std::mutex all_mu_;
  std::vector<std::unique_ptr<Arena>> all_;
};

}  // namespace adn::common
