#include "common/rng.h"

#include <cmath>

namespace adn {

double Rng::Log(double x) { return std::log(x); }

}  // namespace adn
