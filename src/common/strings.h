// Small string helpers used by the DSL front end and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace adn {

// Split on a single-character delimiter; keeps empty pieces.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

// Strip ASCII whitespace from both ends.
std::string_view TrimString(std::string_view s);

// Join pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

// ASCII-only case transforms (DSL keywords are case-insensitive).
std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);
bool EqualsIgnoreAsciiCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// FNV-1a 64-bit; stable across platforms, used for field ids and LB hashing.
uint64_t Fnv1a64(std::string_view s);
uint64_t Fnv1a64(const void* data, size_t size);

}  // namespace adn
