// Lightweight Status / Result types used throughout the ADN codebase.
//
// We deliberately avoid exceptions on data-plane paths (per-message work) and
// use Result<T> for compiler / controller code where failures are expected
// (bad DSL input, infeasible placement, ...). This mirrors the error model of
// production proxies where a malformed message must never unwind the worker.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace adn {

// Broad classification of failures; modules attach a human-readable message.
enum class ErrorCode {
  kInvalidArgument,   // caller passed something nonsensical
  kParseError,        // DSL / wire-format syntax error
  kTypeError,         // DSL type-checking failure
  kNotFound,          // missing table / field / service / processor
  kAlreadyExists,     // duplicate definition
  kUnsupported,       // valid input but not supported by a backend/platform
  kResourceExhausted, // queue full, no capacity on any processor
  kFailedPrecondition,// operation invalid in current state
  kInternal,          // invariant violation (bug)
};

std::string_view ErrorCodeName(ErrorCode code);

// An error with a code and a contextual message. Cheap to move.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ParseError: unexpected token ')' at line 3"
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

// Status: success or an Error. Use for operations with no result value.
class Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design
  Status(ErrorCode code, std::string message)
      : error_(Error(code, std::move(message))) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  std::string ToString() const { return ok() ? "OK" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

// Result<T>: either a value or an Error. A minimal std::expected stand-in.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}         // NOLINT: implicit by design
  Result(Error error) : repr_(std::move(error)) {}     // NOLINT: implicit by design
  Result(ErrorCode code, std::string message)
      : repr_(Error(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(repr_);
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return Status(error());
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> repr_;
};

// Propagate an error from an expression producing Status.
#define ADN_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::adn::Status adn_status_ = (expr);             \
    if (!adn_status_.ok()) return adn_status_.error(); \
  } while (false)

// Assign from a Result<T> or propagate its error.
// Usage: ADN_ASSIGN_OR_RETURN(auto x, ComputeX());
#define ADN_ASSIGN_OR_RETURN(decl, expr)        \
  ADN_ASSIGN_OR_RETURN_IMPL_(                   \
      ADN_RESULT_CONCAT_(adn_result_, __LINE__), decl, expr)

#define ADN_RESULT_CONCAT_INNER_(a, b) a##b
#define ADN_RESULT_CONCAT_(a, b) ADN_RESULT_CONCAT_INNER_(a, b)
#define ADN_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.error();                \
  decl = std::move(tmp).value()

}  // namespace adn
