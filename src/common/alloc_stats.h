// Debug allocation counter for the zero-allocation gate (bench_alloc).
//
// When a binary links the adn_alloc_hooks object library (compiled with
// ADN_COUNT_ALLOCS), the global operator new/new[] are replaced with
// counting versions, so alloc_stats::TotalAllocs() observes every heap
// allocation anywhere in the process — libraries included — with one
// relaxed atomic increment of overhead. Binaries that do not link the hooks
// see the same API but the counter stays at zero (Counting() reports
// whether hooks are live).
//
// This is a measurement tool, not production instrumentation: only
// bench_alloc links the hooks, and CI gates allocations/msg == 0 on the
// engine burst path with it (tools/check_perf.py --max-allocs).
#pragma once

#include <atomic>
#include <cstdint>

namespace adn::common::alloc_stats {

namespace internal {
inline std::atomic<uint64_t>& AllocCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}
inline std::atomic<bool>& HooksLive() {
  static std::atomic<bool> live{false};
  return live;
}
}  // namespace internal

// Total operator-new calls since process start (0 when hooks not linked).
inline uint64_t TotalAllocs() {
  return internal::AllocCount().load(std::memory_order_relaxed);
}

// True when the counting operator-new replacement is linked in.
inline bool Counting() {
  return internal::HooksLive().load(std::memory_order_relaxed);
}

}  // namespace adn::common::alloc_stats
