#include "core/network.h"

#include "dsl/parser.h"

namespace adn::core {

Result<std::unique_ptr<Network>> Network::Create(std::string dsl_source,
                                                 NetworkOptions options) {
  auto network = std::unique_ptr<Network>(new Network());
  network->source_ = std::move(dsl_source);
  network->options_ = options;

  // Two-machine testbed like the paper's evaluation, plus whatever the
  // environment claims to have.
  {
    controller::MachineSpec m1;
    m1.name = "machine-a";
    m1.cores = 10;
    m1.p4_switch_on_path = options.environment.p4_switch_on_path;
    ADN_RETURN_IF_ERROR(network->cluster_.AddMachine(m1));
    controller::MachineSpec m2;
    m2.name = "machine-b";
    m2.cores = 10;
    m2.has_smartnic = options.environment.receiver_smartnic;
    m2.p4_switch_on_path = options.environment.p4_switch_on_path;
    ADN_RETURN_IF_ERROR(network->cluster_.AddMachine(m2));
  }

  controller::ControllerOptions controller_options;
  controller_options.policy = options.policy;
  controller_options.environment = options.environment;
  controller_options.compile = options.compile;
  controller_options.state_seeds = options.state_seeds;
  network->controller_ = std::make_unique<controller::AdnController>(
      &network->cluster_, std::move(controller_options));

  // Services come from the program's chains; parse once to learn them.
  ADN_ASSIGN_OR_RETURN(dsl::Program parsed,
                       dsl::ParseProgram(network->source_));
  for (const dsl::ChainDecl& chain : parsed.chains) {
    if (network->cluster_.FindService(chain.caller_service) == nullptr) {
      ADN_RETURN_IF_ERROR(network->cluster_.AddService(chain.caller_service));
      auto caller =
          network->cluster_.AddReplica(chain.caller_service, "machine-a");
      if (!caller.ok()) return caller.error();
    }
    if (network->cluster_.FindService(chain.callee_service) == nullptr) {
      ADN_RETURN_IF_ERROR(network->cluster_.AddService(chain.callee_service));
      for (int i = 0; i < options.callee_replicas; ++i) {
        auto replica =
            network->cluster_.AddReplica(chain.callee_service, "machine-b");
        if (!replica.ok()) return replica.error();
      }
    }
  }

  // Apply the program; the controller reconciles synchronously.
  ADN_RETURN_IF_ERROR(
      network->cluster_.ApplyConfig("adn-program", network->source_));
  if (!network->controller_->last_status().ok()) {
    return network->controller_->last_status().error();
  }
  return network;
}

const compiler::CompiledProgram& Network::program() const {
  return controller_->deployment()->program;
}

const controller::PlacementDecision* Network::PlacementFor(
    std::string_view chain) const {
  const auto* deployment = controller_->deployment();
  if (deployment == nullptr) return nullptr;
  for (size_t i = 0; i < deployment->program.chains.size(); ++i) {
    if (deployment->program.chains[i].name == chain) {
      return &deployment->placements[i];
    }
  }
  return nullptr;
}

const compiler::CompiledChain* Network::Chain(std::string_view chain) const {
  const auto* deployment = controller_->deployment();
  return deployment != nullptr ? deployment->program.FindChain(chain)
                               : nullptr;
}

Result<rpc::EndpointId> Network::AddCalleeReplica(std::string_view chain) {
  const compiler::CompiledChain* compiled = Chain(chain);
  if (compiled == nullptr) {
    return Error(ErrorCode::kNotFound,
                 "chain '" + std::string(chain) + "' not found");
  }
  return cluster_.AddReplica(compiled->callee_service, "machine-b");
}

Status Network::RemoveCalleeReplica(std::string_view chain,
                                    rpc::EndpointId endpoint) {
  const compiler::CompiledChain* compiled = Chain(chain);
  if (compiled == nullptr) {
    return Status(ErrorCode::kNotFound,
                  "chain '" + std::string(chain) + "' not found");
  }
  return cluster_.RemoveReplica(compiled->callee_service, endpoint);
}

Result<mrpc::AdnPathResult> Network::RunWorkload(
    std::string_view chain, const WorkloadOptions& workload) {
  const compiler::CompiledChain* compiled = Chain(chain);
  const controller::PlacementDecision* placement = PlacementFor(chain);
  if (compiled == nullptr || placement == nullptr) {
    return Error(ErrorCode::kNotFound,
                 "chain '" + std::string(chain) + "' is not deployed");
  }
  ADN_ASSIGN_OR_RETURN(std::vector<mrpc::PlacedStage> stages,
                       controller_->BuildStages(chain, options_.seed));

  mrpc::AdnPathConfig config;
  config.label = workload.label.empty()
                     ? "ADN:" + std::string(chain) + " (" +
                           std::string(controller::PlacementPolicyName(
                               options_.policy)) +
                           ")"
                     : workload.label;
  config.concurrency = workload.concurrency;
  config.measured_requests = workload.measured_requests;
  config.warmup_requests = workload.warmup_requests;
  config.seed = options_.seed;
  config.model = workload.model;
  config.make_request = workload.make_request;
  config.stages = std::move(stages);
  config.client_engine_width = workload.client_engine_width;
  config.server_engine_width = workload.server_engine_width;
  config.report_interval_ns = workload.report_interval_ns;
  config.on_report = workload.on_report;
  config.offered_rps = workload.offered_rps;
  config.run_for_ns = workload.run_for_ns;
  // The wire header between the machines is the spec at the sender->receiver
  // cut: after the last client-side element.
  size_t cut = 0;
  for (size_t i = 0; i < placement->sites.size(); ++i) {
    if (placement->sites[i] == mrpc::Site::kClientApp ||
        placement->sites[i] == mrpc::Site::kClientEngine ||
        placement->sites[i] == mrpc::Site::kClientKernel) {
      cut = i + 1;
    }
  }
  config.header = compiled->headers.link_specs[cut];
  // In-app policy: no mRPC service runtimes on the path.
  config.client_engine_present =
      options_.policy != controller::PlacementPolicy::kInApp;
  config.server_engine_present =
      options_.policy != controller::PlacementPolicy::kInApp;
  return RunAdnPathExperiment(config);
}

std::function<rpc::Message(uint64_t, Rng&)> MakeDefaultRequestFactory(
    size_t payload_bytes, std::string method) {
  return [payload_bytes, method](uint64_t id, Rng& rng) {
    static const char* kUsers[] = {"alice", "bob", "carol", "dave"};
    Bytes payload(payload_bytes);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    return rpc::Message::MakeRequest(
        id, method,
        {
            {"username", rpc::Value(std::string(
                             kUsers[rng.NextBelow(4)]))},
            {"object_id", rpc::Value(static_cast<int64_t>(
                              rng.NextBelow(100000)))},
            {"payload", rpc::Value(std::move(payload))},
        });
  };
}

}  // namespace adn::core
