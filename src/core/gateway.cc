#include "core/gateway.h"

#include "common/strings.h"

namespace adn::core {

namespace {

const std::string* FindHeader(const stack::HeaderList& headers,
                              std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string_view MappedName(
    const std::vector<std::pair<std::string, std::string>>& mapping,
    std::string_view from) {
  for (const auto& [a, b] : mapping) {
    if (a == from) return b;
  }
  return from;  // identity by default
}

}  // namespace

IngressGateway::IngressGateway(rpc::Schema external_schema,
                               IngressMapping mapping,
                               rpc::HeaderSpec adn_spec,
                               rpc::MethodRegistry* methods)
    : proto_(external_schema),
      mapping_(std::move(mapping)),
      codec_(std::move(adn_spec), methods),
      methods_(methods) {}

Result<rpc::Message> IngressGateway::DecodeExternal(
    std::span<const uint8_t> grpc_wire, stack::HpackCodec& hpack) {
  ADN_ASSIGN_OR_RETURN(stack::GrpcHttp2Message h2,
                       stack::ParseGrpcMessage(grpc_wire, hpack));
  ADN_ASSIGN_OR_RETURN(rpc::Message body,
                       stack::ProtoDecode(h2.grpc_payload, proto_));

  rpc::Message out;
  out.set_kind(rpc::MessageKind::kRequest);
  // Method from :path.
  const std::string* path = FindHeader(h2.headers, ":path");
  if (path == nullptr) {
    return Error(ErrorCode::kParseError, "external request has no :path");
  }
  std::string method = *path;
  if (StartsWith(method, mapping_.path_prefix)) {
    method = method.substr(mapping_.path_prefix.size());
  }
  out.set_method(method);
  methods_->Intern(method);

  // Body fields (renamed per mapping).
  for (const auto& field : body.fields()) {
    out.SetField(MappedName(mapping_.body_fields, field.name()), field.value);
  }
  // Header-carried fields.
  for (const auto& [header, field] : mapping_.header_fields) {
    const std::string* v = FindHeader(h2.headers, header);
    if (v != nullptr) out.SetField(field, rpc::Value(*v));
  }
  return out;
}

Result<Bytes> IngressGateway::TranslateIn(std::span<const uint8_t> grpc_wire,
                                          stack::HpackCodec& hpack,
                                          uint64_t id,
                                          rpc::EndpointId destination) {
  ADN_ASSIGN_OR_RETURN(rpc::Message m, DecodeExternal(grpc_wire, hpack));
  m.set_id(id);
  m.set_destination(destination);
  Bytes out;
  ADN_RETURN_IF_ERROR(codec_.Encode(m, out));
  ++translated_;
  return out;
}

EgressGateway::EgressGateway(rpc::Schema external_schema,
                             IngressMapping mapping, rpc::HeaderSpec adn_spec,
                             rpc::MethodRegistry* methods)
    : proto_(external_schema),
      mapping_(std::move(mapping)),
      codec_(std::move(adn_spec), methods) {}

Result<Bytes> EgressGateway::TranslateOut(std::span<const uint8_t> adn_wire,
                                          stack::HpackCodec& hpack,
                                          uint32_t stream_id) {
  ADN_ASSIGN_OR_RETURN(rpc::Message m, codec_.Decode(adn_wire));

  // Rename ADN fields back to the external schema's names (reverse map).
  rpc::Message external;
  for (const auto& field : m.fields()) {
    std::string_view name = field.name();
    for (const auto& [ext, adn_name] : mapping_.body_fields) {
      if (adn_name == name) {
        name = ext;
        break;
      }
    }
    external.SetField(name, field.value);
  }

  stack::GrpcHttp2Message h2;
  int grpc_status = m.kind() == rpc::MessageKind::kError ? 13 : 0;
  stack::HeaderList custom;
  if (m.kind() == rpc::MessageKind::kError) {
    custom.emplace_back("grpc-message", m.error_detail());
  }
  h2.headers = stack::MakeGrpcResponseHeaders(grpc_status, custom);
  ADN_ASSIGN_OR_RETURN(h2.grpc_payload,
                       stack::ProtoEncode(external, proto_));
  h2.stream_id = stream_id;
  h2.end_stream = true;
  return stack::EncodeGrpcMessage(h2, hpack);
}

PeeringTranslator::PeeringTranslator(
    rpc::HeaderSpec spec_a, rpc::MethodRegistry* methods_a,
    rpc::HeaderSpec spec_b, rpc::MethodRegistry* methods_b,
    std::vector<FieldMap> field_map,
    std::vector<std::pair<std::string, std::string>> method_map)
    : codec_a_(std::move(spec_a), methods_a),
      codec_b_(std::move(spec_b), methods_b),
      field_map_(std::move(field_map)),
      method_map_(std::move(method_map)) {}

Result<Bytes> PeeringTranslator::Translate(std::span<const uint8_t> wire_a) {
  ADN_ASSIGN_OR_RETURN(rpc::Message m, codec_a_.Decode(wire_a));

  rpc::Message out;
  out.set_id(m.id());
  out.set_kind(m.kind());
  out.set_source(m.source());
  out.set_destination(m.destination());
  out.set_error_detail(m.error_detail());
  std::string method = m.method();
  for (const auto& [a, b] : method_map_) {
    if (a == method) {
      method = b;
      break;
    }
  }
  out.set_method(method);
  for (const auto& field : m.fields()) {
    std::string_view name = field.name();
    for (const FieldMap& fm : field_map_) {
      if (fm.from == name) {
        name = fm.to;
        break;
      }
    }
    out.SetField(name, field.value);
  }
  Bytes wire_b;
  ADN_RETURN_IF_ERROR(codec_b_.Encode(out, wire_b));
  return wire_b;
}

}  // namespace adn::core
