// Synthetic workload generators modeled on published microservice traces
// (the paper motivates ADN with production microservice behaviour [47, 59]):
// Zipf-skewed users and objects, log-normal payload sizes, and a weighted
// method mix. All deterministic under a seed; used by examples and benches
// that want more realistic traffic than fixed-size echoes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rpc/message.h"

namespace adn::core {

// Zipf(s) sampler over ranks [0, n). Precomputes the CDF once; sampling is
// a binary search. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew);
  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Log-normal sizes clamped to [min_bytes, max_bytes]. Parameterized by the
// median and sigma of the underlying normal (microservice payload studies
// report medians of a few hundred bytes with heavy tails).
class PayloadSizeSampler {
 public:
  PayloadSizeSampler(size_t median_bytes, double sigma, size_t min_bytes,
                     size_t max_bytes);
  size_t Sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
  size_t min_bytes_;
  size_t max_bytes_;
};

struct TraceWorkloadOptions {
  size_t user_population = 1000;
  double user_skew = 1.1;        // Zipf skew for usernames
  size_t object_population = 100'000;
  double object_skew = 0.9;      // Zipf skew for object ids
  size_t payload_median_bytes = 256;
  double payload_sigma = 1.0;
  size_t payload_min_bytes = 16;
  size_t payload_max_bytes = 64 * 1024;
  // Weighted method mix, e.g. {{"Store.Get", 80}, {"Store.Put", 20}}.
  std::vector<std::pair<std::string, int>> method_mix = {
      {"Store.Get", 80}, {"Store.Put", 20}};
};

// Build a request factory (compatible with WorkloadOptions::make_request)
// producing username/object_id/payload fields drawn from the distributions.
// Method picks use cumulative-weight sampling (O(#methods) memory however
// large the weights); a non-positive weight in method_mix is an
// InvalidArgument error, not a silent omission.
Result<std::function<rpc::Message(uint64_t, Rng&)>> MakeTraceWorkload(
    TraceWorkloadOptions options);

// Piecewise-constant offered-load profile (RPCs/sec over time) for
// open-loop experiments: a baseline rate with timed overrides — step-up,
// burst, step-down. Overrides are half-open [start_ns, end_ns); when they
// overlap, the last matching one wins.
struct RateStep {
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  double rps = 0.0;
};

class StepRateProfile {
 public:
  StepRateProfile(double baseline_rps, std::vector<RateStep> steps)
      : baseline_(baseline_rps), steps_(std::move(steps)) {}

  double RateAt(int64_t t_ns) const;

  // Convenience adapter for AdnPathConfig::offered_rps.
  std::function<double(int64_t)> AsFunction() const {
    return [profile = *this](int64_t t) { return profile.RateAt(t); };
  }

 private:
  double baseline_;
  std::vector<RateStep> steps_;
};

}  // namespace adn::core
