#include "core/client_policy.h"

#include <algorithm>
#include <string_view>

#include "common/strings.h"

namespace adn::core {

RetryBudget::RetryBudget(const RetryPolicy& policy) : policy_(policy) {}

void RetryBudget::OnRequest() {
  ++requests_;
  // Slide the window: decay both counters so the fraction reflects recent
  // traffic only.
  if (requests_ > policy_.budget_window_requests) {
    requests_ = (requests_ + 1) / 2;
    retries_ = retries_ / 2;
  }
}

bool RetryBudget::TryConsume() {
  if (requests_ == 0) return false;
  double fraction =
      static_cast<double>(retries_ + 1) / static_cast<double>(requests_);
  if (fraction > policy_.budget_fraction) return false;
  ++retries_;
  return true;
}

double RetryBudget::current_fraction() const {
  if (requests_ == 0) return 0.0;
  return static_cast<double>(retries_) / static_cast<double>(requests_);
}

int64_t BackoffForAttempt(const RetryPolicy& policy, int attempt) {
  // Clamp in double space: casting a double beyond INT64_MAX to int64_t is
  // UB (and in practice yields a negative value std::min would then pick).
  const double max_ns = static_cast<double>(policy.max_backoff_ns);
  double backoff = static_cast<double>(policy.base_backoff_ns);
  for (int i = 1; i < attempt && backoff < max_ns; ++i) {
    backoff *= policy.backoff_multiplier;
  }
  if (backoff >= max_ns) return policy.max_backoff_ns;
  return static_cast<int64_t>(backoff);
}

bool IsRetriableError(std::string_view abort_message) {
  // Transient network-injected failures are retriable; policy denials are
  // permanent.
  if (abort_message.find("fault injected") != std::string_view::npos) {
    return true;
  }
  if (abort_message.find("rate limit") != std::string_view::npos) {
    return true;
  }
  if (abort_message.find("circuit open") != std::string_view::npos) {
    return true;
  }
  return false;
}

}  // namespace adn::core
