#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace adn::core {

ZipfSampler::ZipfSampler(size_t n, double skew) {
  cdf_.reserve(n);
  double total = 0;
  for (size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), skew);
    cdf_.push_back(total);
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

PayloadSizeSampler::PayloadSizeSampler(size_t median_bytes, double sigma,
                                       size_t min_bytes, size_t max_bytes)
    : mu_(std::log(static_cast<double>(median_bytes))),
      sigma_(sigma),
      min_bytes_(min_bytes),
      max_bytes_(max_bytes) {}

size_t PayloadSizeSampler::Sample(Rng& rng) const {
  // Box-Muller from two uniforms.
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) u1 = 1e-12;
  double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  double size = std::exp(mu_ + sigma_ * normal);
  if (size < static_cast<double>(min_bytes_)) return min_bytes_;
  if (size > static_cast<double>(max_bytes_)) return max_bytes_;
  return static_cast<size_t>(size);
}

std::function<rpc::Message(uint64_t, Rng&)> MakeTraceWorkload(
    TraceWorkloadOptions options) {
  auto users = std::make_shared<ZipfSampler>(options.user_population,
                                             options.user_skew);
  auto objects = std::make_shared<ZipfSampler>(options.object_population,
                                               options.object_skew);
  auto sizes = std::make_shared<PayloadSizeSampler>(
      options.payload_median_bytes, options.payload_sigma,
      options.payload_min_bytes, options.payload_max_bytes);
  // Expand the method mix into a weighted pick table.
  auto methods = std::make_shared<std::vector<std::string>>();
  for (const auto& [method, weight] : options.method_mix) {
    for (int i = 0; i < weight; ++i) methods->push_back(method);
  }
  if (methods->empty()) methods->push_back("Trace.Call");

  return [users, objects, sizes, methods](uint64_t id, Rng& rng) {
    size_t user_rank = users->Sample(rng);
    size_t object_rank = objects->Sample(rng);
    size_t payload_bytes = sizes->Sample(rng);
    Bytes payload(payload_bytes);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBelow(256));
    const std::string& method =
        (*methods)[rng.NextBelow(methods->size())];
    return rpc::Message::MakeRequest(
        id, method,
        {{"username",
          rpc::Value("user" + std::to_string(user_rank))},
         {"object_id", rpc::Value(static_cast<int64_t>(object_rank))},
         {"payload", rpc::Value(std::move(payload))}});
  };
}

double StepRateProfile::RateAt(int64_t t_ns) const {
  double rate = baseline_;
  for (const RateStep& step : steps_) {
    if (t_ns >= step.start_ns && t_ns < step.end_ns) rate = step.rps;
  }
  return rate;
}

}  // namespace adn::core
