#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace adn::core {

ZipfSampler::ZipfSampler(size_t n, double skew) {
  cdf_.reserve(n);
  double total = 0;
  for (size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), skew);
    cdf_.push_back(total);
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  // An empty population has no valid rank; 0 is the only sane answer and
  // keeps callers (who index [0, n)) from reading past an empty CDF.
  if (cdf_.empty()) return 0;
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  // FP rounding can leave cdf_.back() fractionally below 1.0, in which case
  // lower_bound returns end(); clamp to the last rank instead of returning n.
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

PayloadSizeSampler::PayloadSizeSampler(size_t median_bytes, double sigma,
                                       size_t min_bytes, size_t max_bytes)
    : mu_(std::log(static_cast<double>(median_bytes))),
      sigma_(sigma),
      min_bytes_(min_bytes),
      max_bytes_(max_bytes) {}

size_t PayloadSizeSampler::Sample(Rng& rng) const {
  // Box-Muller from two uniforms.
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) u1 = 1e-12;
  double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  double size = std::exp(mu_ + sigma_ * normal);
  if (size < static_cast<double>(min_bytes_)) return min_bytes_;
  if (size > static_cast<double>(max_bytes_)) return max_bytes_;
  return static_cast<size_t>(size);
}

Result<std::function<rpc::Message(uint64_t, Rng&)>> MakeTraceWorkload(
    TraceWorkloadOptions options) {
  // Cumulative-weight sampling: O(methods) memory regardless of weight
  // magnitude, and non-positive weights are an error rather than silently
  // vanishing from the mix.
  struct MethodMix {
    std::vector<std::string> names;
    std::vector<int64_t> cumulative;
    int64_t total = 0;
  };
  auto mix = std::make_shared<MethodMix>();
  for (const auto& [method, weight] : options.method_mix) {
    if (weight <= 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "method_mix weight for '" + method +
                       "' must be positive, got " + std::to_string(weight));
    }
    mix->names.push_back(method);
    mix->total += weight;
    mix->cumulative.push_back(mix->total);
  }
  if (mix->names.empty()) {
    mix->names.push_back("Trace.Call");
    mix->total = 1;
    mix->cumulative.push_back(1);
  }

  auto users = std::make_shared<ZipfSampler>(options.user_population,
                                             options.user_skew);
  auto objects = std::make_shared<ZipfSampler>(options.object_population,
                                               options.object_skew);
  auto sizes = std::make_shared<PayloadSizeSampler>(
      options.payload_median_bytes, options.payload_sigma,
      options.payload_min_bytes, options.payload_max_bytes);

  return std::function<rpc::Message(uint64_t, Rng&)>(
      [users, objects, sizes, mix](uint64_t id, Rng& rng) {
        size_t user_rank = users->Sample(rng);
        size_t object_rank = objects->Sample(rng);
        size_t payload_bytes = sizes->Sample(rng);
        Bytes payload(payload_bytes);
        for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBelow(256));
        int64_t tick = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(mix->total)));
        size_t pick = static_cast<size_t>(
            std::upper_bound(mix->cumulative.begin(), mix->cumulative.end(),
                             tick) -
            mix->cumulative.begin());
        const std::string& method = mix->names[pick];
        return rpc::Message::MakeRequest(
            id, method,
            {{"username", rpc::Value("user" + std::to_string(user_rank))},
             {"object_id", rpc::Value(static_cast<int64_t>(object_rank))},
             {"payload", rpc::Value(std::move(payload))}});
      });
}

double StepRateProfile::RateAt(int64_t t_ns) const {
  double rate = baseline_;
  for (const RateStep& step : steps_) {
    if (t_ns >= step.start_ns && t_ns < step.end_ns) rate = step.rps;
  }
  return rate;
}

}  // namespace adn::core
