// adn::core::Network — the library's front door.
//
// A Network owns the whole ADN lifecycle for one application: it stands up a
// simulated cluster (machines + services + replicas), applies the DSL
// program as an ADNConfig, runs the controller (compile -> optimize ->
// place -> seed state), and can drive closed-loop workloads over the
// resulting data plane, returning latency/throughput statistics.
//
//   auto network = core::Network::Create(source, options);
//   auto result  = network->RunWorkload("fig5", workload);
//
// Inspection accessors expose everything the control plane produced:
// compiled chains, pass reports, placements, per-link header specs, and the
// generated eBPF/P4 artifacts.
#pragma once

#include <memory>
#include <string>

#include "controller/controller.h"
#include "mrpc/adn_path.h"

namespace adn::core {

struct NetworkOptions {
  controller::PlacementPolicy policy =
      controller::PlacementPolicy::kNativeOnly;
  controller::PathEnvironment environment;
  compiler::CompileOptions compile;
  // Replicas of the callee service (drives the LB endpoints table).
  int callee_replicas = 2;
  // Policy state (ACL rules etc.): table -> rows.
  std::vector<std::pair<std::string, std::vector<rpc::Row>>> state_seeds;
  uint64_t seed = 1;
};

struct WorkloadOptions {
  int concurrency = 128;
  uint64_t measured_requests = 20'000;
  uint64_t warmup_requests = 2'000;
  std::function<rpc::Message(uint64_t id, Rng& rng)> make_request;
  sim::CostModel model = sim::CostModel::Default();
  int client_engine_width = 1;
  int server_engine_width = 1;
  std::string label;
  // Live telemetry->control loop, passed through to mrpc::AdnPathConfig
  // (see adn_path.h): in-run reporting cadence, controller hook, and the
  // optional open-loop offered-load profile.
  sim::SimTime report_interval_ns = 0;
  mrpc::ReportCallback on_report;
  std::function<double(sim::SimTime)> offered_rps;
  sim::SimTime run_for_ns = 0;
};

class Network {
 public:
  static Result<std::unique_ptr<Network>> Create(std::string dsl_source,
                                                 NetworkOptions options);

  // --- Control-plane inspection ---------------------------------------------
  const compiler::CompiledProgram& program() const;
  const controller::PlacementDecision* PlacementFor(
      std::string_view chain) const;
  const compiler::CompiledChain* Chain(std::string_view chain) const;
  const controller::AdnController& controller() const { return *controller_; }
  controller::ClusterState& cluster() { return cluster_; }

  // --- Deployment churn -------------------------------------------------------
  // Add/remove a callee replica; the controller refreshes LB state.
  Result<rpc::EndpointId> AddCalleeReplica(std::string_view chain);
  Status RemoveCalleeReplica(std::string_view chain, rpc::EndpointId endpoint);

  // --- Data plane ---------------------------------------------------------------
  // Run a closed-loop workload across the placed chain.
  Result<mrpc::AdnPathResult> RunWorkload(std::string_view chain,
                                          const WorkloadOptions& workload);

 private:
  Network() = default;

  std::string source_;
  NetworkOptions options_;
  controller::ClusterState cluster_;
  std::unique_ptr<controller::AdnController> controller_;
};

// A default "short byte string" request factory matching the paper's §6
// workload (username + object id + payload fields).
std::function<rpc::Message(uint64_t, Rng&)> MakeDefaultRequestFactory(
    size_t payload_bytes = 64, std::string method = "Echo.Call");

}  // namespace adn::core
