// Client-side stream-shaping policies: retries with exponential backoff and
// a retry budget, plus deadlines (paper §5.1's timeout/retry filters — these
// particular operators live in the RPC library next to the caller because
// only the caller can re-issue a request).
#pragma once

#include <cstdint>

#include "common/status.h"

namespace adn::core {

struct RetryPolicy {
  int max_attempts = 3;          // total tries including the first
  int64_t base_backoff_ns = 1'000'000;   // 1 ms
  int64_t max_backoff_ns = 64'000'000;   // 64 ms
  double backoff_multiplier = 2.0;
  // Retry budget: at most this fraction of recent requests may be retries
  // (prevents retry storms; modeled on Envoy/gRPC retry budgets).
  double budget_fraction = 0.2;
  int64_t budget_window_requests = 100;
};

// Tracks the retry budget over a sliding request count window.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryPolicy& policy);

  // Call for every initial request issued.
  void OnRequest();
  // True if a retry may be issued now (and consumes budget when allowed).
  bool TryConsume();

  double current_fraction() const;

 private:
  RetryPolicy policy_;
  int64_t requests_ = 0;
  int64_t retries_ = 0;
};

// Deterministic backoff schedule for attempt n (1-based first retry).
int64_t BackoffForAttempt(const RetryPolicy& policy, int attempt);

// Decide whether an attempt may be retried: attempts remaining, budget
// available, and the error is retriable (aborts from fault injection are;
// ACL denials are not — retrying a deny never succeeds).
bool IsRetriableError(std::string_view abort_message);

struct TimeoutPolicy {
  int64_t deadline_ns = 10'000'000;  // 10 ms end-to-end
};

}  // namespace adn::core
