// External communication for ADN applications (paper §7):
//
//   "As with service meshes, such communication can happen via designated
//   ingress and egress locations for an application. The ingress locations
//   translate incoming IP packets into the ADN format, and the egress
//   locations do the reverse translation."
//
//   "When two ADN-based applications communicate, instead of translating
//   the sender ADN's messages to a standard format and then translating the
//   standard format to the receiver ADN's format, we can directly translate
//   information between the two ADNs."
//
// IngressGateway converts real gRPC-over-HTTP/2 bytes (the format external
// clients speak) into the application's minimal ADN wire format, mapping
// HTTP headers and protobuf fields onto ADN tuple fields; EgressGateway is
// the inverse. PeeringTranslator implements "application peering": a direct
// ADN-to-ADN field mapping with no intermediate standard format.
#pragma once

#include <string>
#include <vector>

#include "rpc/wire.h"
#include "stack/http2.h"
#include "stack/proto_codec.h"

namespace adn::core {

// How external protocol artifacts map onto ADN tuple fields.
struct IngressMapping {
  // HTTP header -> ADN field (TEXT), e.g. {"x-user", "username"}.
  std::vector<std::pair<std::string, std::string>> header_fields;
  // Protobuf field name -> ADN field name (same name when empty mapping).
  std::vector<std::pair<std::string, std::string>> body_fields;
  // HTTP/2 :path prefix stripped to obtain the ADN method name
  // ("/Store.Get" -> "Store.Get").
  std::string path_prefix = "/";
};

class IngressGateway {
 public:
  // `external_schema`: the protobuf schema external clients encode with.
  // `adn_spec`/`methods`: the target application's wire contract.
  IngressGateway(rpc::Schema external_schema, IngressMapping mapping,
                 rpc::HeaderSpec adn_spec, rpc::MethodRegistry* methods);

  // gRPC-over-HTTP/2 request bytes -> ADN wire bytes. `hpack` is the
  // external connection's decoder state. Assigns the given message id and
  // destination endpoint.
  Result<Bytes> TranslateIn(std::span<const uint8_t> grpc_wire,
                            stack::HpackCodec& hpack, uint64_t id,
                            rpc::EndpointId destination);

  // The decoded intermediate (for inspection/tests).
  Result<rpc::Message> DecodeExternal(std::span<const uint8_t> grpc_wire,
                                      stack::HpackCodec& hpack);

  uint64_t translated() const { return translated_; }

 private:
  stack::ProtoSchema proto_;
  IngressMapping mapping_;
  rpc::AdnWireCodec codec_;
  rpc::MethodRegistry* methods_;
  uint64_t translated_ = 0;
};

class EgressGateway {
 public:
  EgressGateway(rpc::Schema external_schema, IngressMapping mapping,
                rpc::HeaderSpec adn_spec, rpc::MethodRegistry* methods);

  // ADN wire bytes (a response) -> gRPC-over-HTTP/2 bytes for the external
  // client. `hpack` is the external connection's encoder state.
  Result<Bytes> TranslateOut(std::span<const uint8_t> adn_wire,
                             stack::HpackCodec& hpack, uint32_t stream_id);

 private:
  stack::ProtoSchema proto_;
  IngressMapping mapping_;
  rpc::AdnWireCodec codec_;
};

// --- Application peering -------------------------------------------------------
// Direct translation between two ADNs' wire contracts: decode with A's
// codec, rename fields, encode with B's codec — one step instead of
// "A -> standard format -> B", and never down to IP framing.
class PeeringTranslator {
 public:
  struct FieldMap {
    std::string from;  // field name in ADN A
    std::string to;    // field name in ADN B
  };

  PeeringTranslator(rpc::HeaderSpec spec_a, rpc::MethodRegistry* methods_a,
                    rpc::HeaderSpec spec_b, rpc::MethodRegistry* methods_b,
                    std::vector<FieldMap> field_map,
                    std::vector<std::pair<std::string, std::string>>
                        method_map);

  // A-format wire bytes -> B-format wire bytes.
  Result<Bytes> Translate(std::span<const uint8_t> wire_a);

  // Steps a message pays via peering vs via the standard-format detour
  // (decode+encode counts) — quantifies §7's "removes one translation step".
  static constexpr int kPeeringSteps = 2;     // decode A, encode B
  static constexpr int kViaStandardSteps = 4; // decode A, encode std,
                                              // decode std, encode B

 private:
  rpc::AdnWireCodec codec_a_;
  rpc::AdnWireCodec codec_b_;
  std::vector<FieldMap> field_map_;
  std::vector<std::pair<std::string, std::string>> method_map_;
};

}  // namespace adn::core
