// §7 "other domains": a data-analytics application whose network does
// predicate + projection pushdown. Workers ship scan records to an
// aggregator; the ADN drops non-matching records *in the network* (before
// the wire on the sender side) and strips the wide debug field the
// aggregator never reads — the compiler's header minimization keeps it off
// the wire entirely. Compare wire bytes and throughput against the same
// application with pushdown disabled.
#include <cstdio>

#include "core/network.h"

namespace {

// With pushdown: a sender-side filter drops records whose score is below
// threshold, and a projection keeps only the fields the aggregator reads.
const char* kPushdownProgram = R"(
ELEMENT ScoreFilter ON REQUEST {
  INPUT (score INT);
  ON DROP SILENT;
  SELECT * FROM input WHERE score >= 90;
}
ELEMENT Project ON REQUEST {
  INPUT (record_id INT, score INT, payload BYTES);
  SELECT record_id, score, payload FROM input;  -- drops debug_blob
}
CHAIN scan FOR CALLS worker -> aggregator {
  ScoreFilter AT SENDER,
  Project AT SENDER
}
)";

// Without pushdown: the network forwards everything; the aggregator filters.
const char* kBaselineProgram = R"(
ELEMENT Passthrough ON REQUEST {
  INPUT (record_id INT);
  SELECT * FROM input;
}
CHAIN scan FOR CALLS worker -> aggregator {
  Passthrough
}
)";

adn::rpc::Message MakeRecord(uint64_t id, adn::Rng& rng) {
  adn::Bytes payload(128);
  adn::Bytes debug_blob(2048);  // wide diagnostic column, rarely consumed
  for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBelow(256));
  for (auto& b : debug_blob) b = static_cast<uint8_t>(rng.NextBelow(4));
  return adn::rpc::Message::MakeRequest(
      id, "Scan.Emit",
      {{"record_id", adn::rpc::Value(static_cast<int64_t>(id))},
       {"score", adn::rpc::Value(static_cast<int64_t>(rng.NextBelow(100)))},
       {"payload", adn::rpc::Value(std::move(payload))},
       {"debug_blob", adn::rpc::Value(std::move(debug_blob))}});
}

struct Out {
  double rate_krps;
  double wire_bytes;
  uint64_t delivered;
};

Out Run(const char* program, bool declare_app_reads) {
  using namespace adn;
  core::NetworkOptions options;
  rpc::Schema schema;
  (void)schema.AddColumn({"record_id", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"score", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"payload", rpc::ValueType::kBytes, false});
  (void)schema.AddColumn({"debug_blob", rpc::ValueType::kBytes, false});
  options.compile.request_schema = schema;
  if (declare_app_reads) {
    // The aggregator declares what it consumes; the compiler's header
    // minimization strips the rest from the wire. The baseline, like a
    // general-purpose mesh, must conservatively carry every field.
    options.compile.app_reads = {"record_id", "score", "payload"};
  }
  auto network = core::Network::Create(program, options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    std::abort();
  }
  core::WorkloadOptions workload;
  workload.concurrency = 64;
  workload.measured_requests = 10'000;
  workload.warmup_requests = 1'000;
  workload.make_request = MakeRecord;
  auto result = (*network)->RunWorkload("scan", workload);
  if (!result.ok()) std::abort();
  return {result->stats.throughput_krps, result->wire_bytes_per_request,
          result->stats.completed};
}

}  // namespace

int main() {
  std::printf(
      "Analytics pushdown (paper §7 'other domains'): scan records with a\n"
      "2 KiB debug column; the aggregator reads only id/score/payload and\n"
      "keeps records with score >= 90.\n\n");
  Out baseline = Run(kBaselineProgram, /*declare_app_reads=*/false);
  Out pushdown = Run(kPushdownProgram, /*declare_app_reads=*/true);
  std::printf("%-22s %12s %18s %12s\n", "network", "rate (krps)",
              "wire B/record", "delivered");
  std::printf("%.*s\n", 68,
              "--------------------------------------------------------------------");
  std::printf("%-22s %12.1f %18.0f %12llu\n", "forward everything",
              baseline.rate_krps, baseline.wire_bytes,
              static_cast<unsigned long long>(baseline.delivered));
  std::printf("%-22s %12.1f %18.0f %12llu\n", "ADN pushdown",
              pushdown.rate_krps, pushdown.wire_bytes,
              static_cast<unsigned long long>(pushdown.delivered));
  std::printf(
      "\nPushdown sends %.0fx fewer bytes per record: non-matching records\n"
      "never reach the wire, and the debug column never leaves the worker\n"
      "(header minimization). The aggregator receives only the %.0f%% of\n"
      "records it actually wants.\n",
      baseline.wire_bytes / pushdown.wire_bytes,
      100.0 * static_cast<double>(pushdown.delivered) /
          static_cast<double>(baseline.delivered));
  return 0;
}
