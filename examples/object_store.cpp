// The paper's §2 motivating scenario as a runnable application: service A
// calls a sharded object store (service B) whose two instances each own a
// subset of the object-id space. The network must 1) route each request to
// the replica owning the object, 2) compress/decompress payloads, and
// 3) enforce access control — all specified in the DSL and deployed by the
// controller.
//
// The example also exercises deployment churn: a third replica joins mid
// run, and the controller refreshes the load balancer's endpoints table
// without touching element code (paper §5.2).
#include <cstdio>
#include <map>

#include "core/network.h"
#include "elements/library.h"

int main() {
  using namespace adn;

  core::NetworkOptions options;
  options.callee_replicas = 2;  // B.1 and B.2 from the paper
  options.state_seeds = {
      {"ac_tab",
       {{rpc::Value("alice"), rpc::Value("W")},
        {rpc::Value("bob"), rpc::Value("W")},
        {rpc::Value("carol"), rpc::Value("W")},
        {rpc::Value("dave"), rpc::Value("W")}}},
  };
  auto network = core::Network::Create(elements::Fig2ProgramSource(), options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }

  const auto* chain = (*network)->Chain("fig2");
  const auto* placement = (*network)->PlacementFor("fig2");
  std::printf("chain    : ");
  for (size_t i = 0; i < chain->elements.size(); ++i) {
    std::printf("%s%s", i > 0 ? " -> " : "",
                chain->elements[i].ir->name.c_str());
  }
  std::printf("\nplacement: %s\n\n", placement->DebugString(*chain).c_str());

  // Routing table before churn: shards split across two replicas.
  auto count_endpoints = [&] {
    std::map<int64_t, int> shards_per_endpoint;
    for (const auto& row :
         (*network)->controller().EndpointRows(chain->callee_service)) {
      shards_per_endpoint[row[1].AsInt()]++;
    }
    return shards_per_endpoint;
  };
  std::printf("shard ownership with 2 replicas:\n");
  for (auto [endpoint, shards] : count_endpoints()) {
    std::printf("  endpoint %lld owns %d of %d shards\n",
                static_cast<long long>(endpoint), shards, elements::kLbShards);
  }

  core::WorkloadOptions workload;
  workload.concurrency = 64;
  workload.measured_requests = 10'000;
  workload.warmup_requests = 1'000;
  workload.make_request = core::MakeDefaultRequestFactory(2048, "Store.Get");
  auto before = (*network)->RunWorkload("fig2", workload);
  if (!before.ok()) return 1;
  std::printf("\nwith 2 replicas: %s\n", before->stats.ToString().c_str());

  // A third replica joins; only the LB's state changes.
  auto added = (*network)->AddCalleeReplica("fig2");
  if (!added.ok()) return 1;
  std::printf("\nreplica %u joined — controller recomputed the endpoints "
              "table (no recompilation):\n",
              added.value());
  for (auto [endpoint, shards] : count_endpoints()) {
    std::printf("  endpoint %lld owns %d of %d shards\n",
                static_cast<long long>(endpoint), shards, elements::kLbShards);
  }
  auto after = (*network)->RunWorkload("fig2", workload);
  if (!after.ok()) return 1;
  std::printf("\nwith 3 replicas: %s\n", after->stats.ToString().c_str());
  std::printf("\nendpoint updates observed by the controller: %d\n",
              (*network)->controller().endpoint_updates());
  return 0;
}
