// Quickstart: write an ADN program, deploy it, send traffic, read stats.
//
//   $ ./build/examples/quickstart
//
// The program defines one element (an access-control list, the paper's
// Figure 4) and one chain. Network::Create stands up the simulated cluster,
// compiles the DSL, places the element, and seeds its state; RunWorkload
// drives a closed loop of RPCs through the resulting data plane.
#include <cstdio>

#include "core/network.h"

int main() {
  using namespace adn;

  // 1. The network, specified in the ADN DSL (paper §5.1).
  const std::string program = R"(
    -- Element state is a relational table the controller can seed,
    -- snapshot, split and merge.
    STATE TABLE ac_tab (username TEXT PRIMARY KEY, permission TEXT);

    ELEMENT Acl ON REQUEST {
      INPUT (username TEXT, payload BYTES);
      ON DROP ABORT 'permission denied';
      SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
        WHERE ac_tab.permission = 'W';
    }

    CHAIN quickstart FOR CALLS client -> server {
      Acl AT TRUSTED
    }
  )";

  // 2. Deploy: compile, optimize, place, seed state.
  core::NetworkOptions options;
  options.state_seeds = {
      {"ac_tab",
       {{rpc::Value("alice"), rpc::Value("W")},
        {rpc::Value("bob"), rpc::Value("W")},
        {rpc::Value("carol"), rpc::Value("W")},
        {rpc::Value("dave"), rpc::Value("R")}}},  // dave may only read
  };
  auto network = core::Network::Create(program, options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect what the control plane produced.
  const auto* chain = (*network)->Chain("quickstart");
  const auto* placement = (*network)->PlacementFor("quickstart");
  std::printf("placement : %s\n", placement->DebugString(*chain).c_str());
  std::printf("wire spec : %s\n",
              chain->headers.link_specs[1].DebugString().c_str());
  std::printf("effects   : %s\n\n",
              chain->elements[0].ir->effects.DebugString().c_str());

  // 4. Drive traffic: 25%% of requests come from dave and get denied.
  core::WorkloadOptions workload;
  workload.concurrency = 32;
  workload.measured_requests = 10'000;
  workload.warmup_requests = 1'000;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto result = (*network)->RunWorkload("quickstart", workload);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->stats.ToString().c_str());
  std::printf("denial rate: %.1f%% (dave is 1 of 4 users)\n",
              100.0 * static_cast<double>(result->stats.dropped) /
                  static_cast<double>(result->stats.completed +
                                      result->stats.dropped));
  return 0;
}
