// Live reconfiguration (paper §5.2): hot-update an element's processing
// logic while carrying its state over, and scale a stateful element out and
// back in with a lossless state split/merge — the operations that let an
// ADN "scale network processing without disruption".
#include <cstdio>

#include "compiler/lower.h"
#include "controller/migration.h"
#include "dsl/parser.h"
#include "elements/library.h"

int main() {
  using namespace adn;

  // v1: plain ACL requiring write permission.
  auto v1_parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                     std::string(elements::AclSql()));
  auto v1 = compiler::LowerProgram(*v1_parsed);
  if (!v1.ok()) return 1;

  auto stage = std::make_unique<mrpc::GeneratedStage>(v1->elements[0], 1);
  for (int i = 0; i < 10'000; ++i) {
    (void)stage->instance().FindTable("ac_tab")->Insert(
        {rpc::Value("user" + std::to_string(i)),
         rpc::Value(i % 3 == 0 ? "R" : "W")});
  }
  std::printf("running Acl v1 with %zu rules, state hash %016llx\n",
              stage->instance().FindTable("ac_tab")->RowCount(),
              static_cast<unsigned long long>(
                  stage->instance().StateContentHash()));

  // --- Hot update: v2 adds an explicit audit message -----------------------
  auto v2_parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) + R"(
    ELEMENT Acl ON REQUEST {
      INPUT (username TEXT, payload BYTES);
      ON DROP ABORT 'denied (policy v2, audited)';
      SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
        WHERE ac_tab.permission = 'W';
    }
  )");
  auto v2 = compiler::LowerProgram(*v2_parsed);
  if (!v2.ok()) {
    std::fprintf(stderr, "%s\n", v2.status().ToString().c_str());
    return 1;
  }
  auto updated = controller::HotUpdateStage(*stage, v2->elements[0], 2);
  if (!updated.ok()) {
    std::fprintf(stderr, "hot update failed: %s\n",
                 updated.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "hot update to v2: %zu state bytes carried over, pause %.1f us, "
      "lossless=%s\n",
      updated->report.state_bytes,
      static_cast<double>(updated->report.pause_ns) / 1000.0,
      updated->report.lossless() ? "yes" : "NO");

  rpc::Message denied = rpc::Message::MakeRequest(
      1, "M",
      {{"username", rpc::Value("user3")},  // user3: i%3==0 -> 'R' -> denied
       {"payload", rpc::Value(Bytes{})}});
  auto outcome = updated->instance->Process(denied, 0);
  std::printf("v2 denial message: \"%s\"\n\n", outcome.abort_message.c_str());

  // --- Scale out to 4 instances, then back to 1 ----------------------------
  auto scaled = controller::ScaleOutStage(*updated->instance, 4, 100);
  if (!scaled.ok()) return 1;
  std::printf("scale-out to 4 shards: pause %.1f us, lossless=%s\n",
              static_cast<double>(scaled->report.pause_ns) / 1000.0,
              scaled->report.lossless() ? "yes" : "NO");
  for (size_t i = 0; i < scaled->instances.size(); ++i) {
    std::printf("  shard %zu: %zu rules\n", i,
                scaled->instances[i]->instance().FindTable("ac_tab")
                    ->RowCount());
  }

  std::vector<const mrpc::GeneratedStage*> shards;
  for (const auto& instance : scaled->instances) {
    shards.push_back(instance.get());
  }
  auto merged = controller::ScaleInStages(shards, 7);
  if (!merged.ok()) return 1;
  std::printf(
      "scale-in to 1: pause %.1f us, lossless=%s, final state hash "
      "%016llx\n",
      static_cast<double>(merged->report.pause_ns) / 1000.0,
      merged->report.lossless() ? "yes" : "NO",
      static_cast<unsigned long long>(
          merged->instance->instance().StateContentHash()));
  std::printf(
      "hash equals the pre-scale-out hash: the whole cycle lost nothing.\n");
  return 0;
}
