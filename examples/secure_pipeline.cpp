// A security/abuse-control pipeline: dedup -> rate limit -> quota ->
// telemetry -> encryption, deployed under different placement policies.
// Shows the compiler's per-platform feasibility analysis and the generated
// eBPF/P4 artifacts (paper §4 Q2), plus how the same program lands on
// different processors as the environment changes.
#include <cstdio>

#include "core/network.h"
#include "elements/library.h"

namespace {

const char* kProgram = R"(
STATE TABLE quota (username TEXT PRIMARY KEY, remaining INT);
STATE TABLE telemetry (method TEXT PRIMARY KEY, count INT);

ELEMENT Quota ON REQUEST {
  INPUT (username TEXT);
  ON DROP ABORT 'quota exceeded';
  SELECT * FROM input JOIN quota ON input.username = quota.username
    WHERE quota.remaining > 0;
  UPDATE quota SET remaining = remaining - 1 WHERE username = input.username;
}

ELEMENT Telemetry ON REQUEST {
  INPUT (payload BYTES);
  UPDATE telemetry SET count = count + 1 WHERE method = method();
}

ELEMENT Encrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, encrypt(payload, 'pipeline-key') AS payload FROM input;
}

ELEMENT Decrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, decrypt(payload, 'pipeline-key') AS payload FROM input;
}

FILTER Limiter ON REQUEST USING rate_limit(rps => 200000, burst => 256);
FILTER Dedup ON REQUEST USING dedup(window => 8192);

CHAIN secure FOR CALLS frontend -> vault {
  Dedup,
  Limiter,
  Quota AT TRUSTED,
  Telemetry,
  Encrypt AT SENDER,
  Decrypt AT RECEIVER
}
)";

}  // namespace

int main() {
  using namespace adn;

  core::NetworkOptions options;
  options.policy = controller::PlacementPolicy::kMinHostCpu;
  options.environment.sender_kernel_offload = true;
  options.environment.receiver_kernel_offload = true;
  options.environment.receiver_smartnic = true;
  options.state_seeds = {
      {"quota",
       {{rpc::Value("alice"), rpc::Value(1'000'000)},
        {rpc::Value("bob"), rpc::Value(1'000'000)},
        {rpc::Value("carol"), rpc::Value(1'000'000)},
        {rpc::Value("dave"), rpc::Value(500)}}},  // dave runs out mid-run
      {"telemetry", {{rpc::Value("Vault.Put"), rpc::Value(0)}}},
  };
  auto network = core::Network::Create(kProgram, options);
  if (!network.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }

  const auto* chain = (*network)->Chain("secure");
  const auto* placement = (*network)->PlacementFor("secure");
  std::printf("placement: %s\n\n", placement->DebugString(*chain).c_str());

  // Per-element platform feasibility, as the compiler reports it.
  std::printf("%-14s %-28s %-28s\n", "element", "eBPF", "P4 switch");
  for (const auto& element : chain->elements) {
    std::printf("%-14s %-28s %-28s\n", element.ir->name.c_str(),
                element.ebpf.feasible ? "yes" : element.ebpf.reason.c_str(),
                element.p4.feasible ? "yes" : element.p4.reason.c_str());
  }

  // Show a slice of a generated artifact.
  for (const auto& element : chain->elements) {
    if (element.ebpf.feasible && element.ir->name == "Encrypt") {
      std::printf("\ngenerated eBPF for Encrypt (first lines):\n");
      std::string_view code = element.ebpf_code;
      size_t printed = 0;
      for (size_t pos = 0; pos < code.size() && printed < 6;) {
        size_t eol = code.find('\n', pos);
        if (eol == std::string_view::npos) eol = code.size();
        std::printf("  %.*s\n", static_cast<int>(eol - pos),
                    code.data() + pos);
        pos = eol + 1;
        ++printed;
      }
    }
  }

  core::WorkloadOptions workload;
  workload.concurrency = 64;
  workload.measured_requests = 10'000;
  workload.warmup_requests = 500;
  workload.make_request =
      core::MakeDefaultRequestFactory(256, "Vault.Put");
  auto result = (*network)->RunWorkload("secure", workload);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", result->stats.ToString().c_str());
  std::printf(
      "drops are dave exhausting his 500-request quota; payloads crossed the "
      "wire encrypted.\n");
  return 0;
}
