#!/usr/bin/env python3
"""Perf regression gate (run by the CI perf job).

Compares a fresh BENCH_exec.json (written by bench_breakdown into its
working directory) against the committed baseline
bench/baselines/exec_baseline.json. The guarded number is
``compiled_ns_per_msg`` — the *uninstrumented* compiled-tier cost per
message through the fig5 chain, the proxy for obs-off fig5 throughput
(throughput = 1e9 / ns_per_msg). The gate fails when fresh throughput
falls more than --max-regress (default 20%) below the baseline; the
generous threshold absorbs shared-runner noise while still catching the
kill-switch requirement breaking (observability or control-loop overhead
leaking into the obs-off hot path).

The same gate guards BENCH_burst.json (written by bench_burst) against
bench/baselines/burst_baseline.json — there ``compiled_ns_per_msg`` is the
default-burst-size 1-worker in-pool executor cost. Pass ``--min-speedup``
to additionally require the fresh file's ``burst_speedup`` (scalar ns/msg
over default-burst ns/msg, measured on the same host in the same run, so
immune to runner-speed variance) to stay above a floor.

A third mode gates BENCH_alloc.json (written by bench_alloc): pass
``--max-allocs`` to require the fresh file's ``allocs_per_msg`` (heap
allocations per message on the arena-backed engine burst path, counted by
the operator-new hooks) to stay at or below the bound. The zero-allocation
invariant is deterministic — not timing-dependent — so CI pins it at 0.
No baseline file is involved in this mode.

The baseline mode also gates BENCH_obs.json (written by bench_obs) against
bench/baselines/obs_baseline.json — there ``compiled_ns_per_msg`` is the
*obs-on* default-burst 1-worker executor cost (metrics + sampled tracing
enabled), and ``burst_speedup`` is obs-on scalar over obs-on burst. Pass
``--max-obs-overhead`` to additionally require ``obs_overhead_frac`` (obs-on
burst over obs-off burst, minus one, same host same run) to stay at or
below the bound — the always-on telemetry contract of
docs/OBSERVABILITY.md "Burst-mode telemetry". Run the same file through
``--max-allocs 0`` to pin the zero-allocation invariant with telemetry on.

A fourth mode gates BENCH_reconfig.json (written by bench_reconfig): pass
``--min-blackout-improvement`` to require the fresh file's
``blackout_improvement`` (pause-drain blackout p99 over live-migration
blackout p99, both measured in the same run on the same host, so immune to
runner-speed variance) to stay above a floor, and ``dropped`` to be exactly
zero — the zero-drop contract of docs/RECONFIG.md is binary. When a
--baseline pointing at reconfig_baseline.json is also given, the absolute
``live_blackout_p99_ns`` is additionally held within --max-regress of the
baseline (use a generous factor: blackout is a tail latency on a shared
runner, far noisier than throughput).

A fifth mode gates BENCH_cache.json (written by bench_cache): pass
``--min-cache-speedup`` to require the fresh file's ``cached_hit_speedup``
(miss-path p50 over hit-path p50 at the gate skew, same host same run, so
runner-speed-immune) to stay above the floor, plus the bounds committed in
bench/baselines/cache_baseline.json: ``hit_rate`` at or above the
baseline's ``min_hit_rate`` (the ARC hit rate at skew 1.1 is
workload-determined, not timing-determined, so the floor is tight) and
``cached_hit_ns_per_msg`` at or below ``max_cached_hit_ns`` (absolute, so
deliberately generous). Run the same file through ``--max-allocs 0`` to
pin the hits-allocate-nothing invariant.

Usage: check_perf.py FRESH_JSON [--baseline PATH] [--max-regress FRACTION]
                     [--min-speedup RATIO] [--max-allocs N]
                     [--max-obs-overhead FRACTION]
                     [--min-blackout-improvement RATIO]
                     [--min-cache-speedup RATIO]
Exits 0 when within bounds, 1 with a one-line verdict otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "bench" / "baselines" / "exec_baseline.json"


def load(path):
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_perf: cannot read {path}: {e}")
    ns = data.get("compiled_ns_per_msg")
    if not isinstance(ns, (int, float)) or ns <= 0:
        sys.exit(f"check_perf: {path}: missing/invalid compiled_ns_per_msg")
    return data, float(ns)


def check_reconfig(args):
    try:
        fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_perf: cannot read {args.fresh}: {e}")
    improvement = fresh.get("blackout_improvement")
    live_p99 = fresh.get("live_blackout_p99_ns")
    dropped = fresh.get("dropped")
    for name, value in (("blackout_improvement", improvement),
                        ("live_blackout_p99_ns", live_p99),
                        ("dropped", dropped)):
        if not isinstance(value, (int, float)):
            print(f"check_perf: FAIL — fresh file has no {name} field")
            return 1
    print(f"live blackout p99: {live_p99 / 1e6:.2f} ms, "
          f"pause-drain p99: "
          f"{fresh.get('pause_drain_blackout_p99_ns', 0) / 1e6:.2f} ms, "
          f"improvement {improvement:.1f}x "
          f"[sha {fresh.get('git_sha', '?')}]")
    if dropped != 0:
        print(f"check_perf: FAIL — {dropped} messages dropped during "
              f"reconfiguration (zero-drop contract, docs/RECONFIG.md)")
        return 1
    if improvement < args.min_blackout_improvement:
        print(f"check_perf: FAIL — blackout improvement {improvement:.1f}x "
              f"below {args.min_blackout_improvement:g}x floor")
        return 1
    if args.baseline and Path(args.baseline).exists():
        try:
            base = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"check_perf: cannot read {args.baseline}: {e}")
        base_p99 = base.get("live_blackout_p99_ns")
        if isinstance(base_p99, (int, float)) and base_p99 > 0:
            growth = live_p99 / base_p99 - 1.0
            print(f"baseline live p99: {base_p99 / 1e6:.2f} ms "
                  f"[sha {base.get('git_sha', '?')}] — "
                  f"fresh is {growth * +100:+.0f}%")
            if growth > args.max_regress:
                print(f"check_perf: FAIL — live blackout p99 grew "
                      f"{growth * 100:.0f}% over baseline "
                      f"(> {args.max_regress * 100:.0f}% allowed)")
                return 1
    print(f"check_perf: OK — zero drops, blackout improvement "
          f"{improvement:.1f}x (floor {args.min_blackout_improvement:g}x)")
    return 0


def check_cache(args):
    try:
        fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_perf: cannot read {args.fresh}: {e}")
    try:
        base = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_perf: cannot read {args.baseline}: {e}")
    hit_rate = fresh.get("hit_rate")
    hit_ns = fresh.get("cached_hit_ns_per_msg")
    speedup = fresh.get("cached_hit_speedup")
    for name, value in (("hit_rate", hit_rate),
                        ("cached_hit_ns_per_msg", hit_ns),
                        ("cached_hit_speedup", speedup)):
        if not isinstance(value, (int, float)):
            print(f"check_perf: FAIL — fresh file has no {name} field")
            return 1
    min_hit_rate = base.get("min_hit_rate", 0.0)
    max_hit_ns = base.get("max_cached_hit_ns", float("inf"))
    print(f"hit rate: {hit_rate * 100:.1f}% (floor {min_hit_rate * 100:.0f}%), "
          f"cached hit: {hit_ns:.0f} ns/msg (ceiling {max_hit_ns:g}), "
          f"speedup {speedup:.1f}x [sha {fresh.get('git_sha', '?')}]")
    if hit_rate < min_hit_rate:
        print(f"check_perf: FAIL — hit rate {hit_rate * 100:.1f}% at the gate "
              f"skew below the {min_hit_rate * 100:.0f}% floor "
              f"(cache admission/eviction regressed)")
        return 1
    if hit_ns > max_hit_ns:
        print(f"check_perf: FAIL — cached hit costs {hit_ns:.0f} ns/msg "
              f"(> {max_hit_ns:g} allowed)")
        return 1
    if speedup < args.min_cache_speedup:
        print(f"check_perf: FAIL — cached hit only {speedup:.1f}x faster than "
              f"the full chain (floor {args.min_cache_speedup:g}x)")
        return 1
    print(f"check_perf: OK — cache gate holds (hit rate, hit cost, "
          f"{speedup:.1f}x >= {args.min_cache_speedup:g}x speedup)")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh", help="BENCH_exec.json from this build")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--max-regress", type=float, default=0.20,
                        help="allowed fractional throughput drop (0.20 = 20%%)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="require fresh burst_speedup >= this ratio")
    parser.add_argument("--max-allocs", type=float, default=None,
                        help="gate a BENCH_alloc.json: require allocs_per_msg "
                             "<= this bound (no baseline used)")
    parser.add_argument("--max-obs-overhead", type=float, default=None,
                        help="require fresh obs_overhead_frac (obs-on over "
                             "obs-off burst cost, minus one) <= this bound")
    parser.add_argument("--min-blackout-improvement", type=float, default=None,
                        help="gate a BENCH_reconfig.json: require "
                             "blackout_improvement >= this ratio and zero "
                             "drops; with --baseline also bound "
                             "live_blackout_p99_ns regression")
    parser.add_argument("--min-cache-speedup", type=float, default=None,
                        help="gate a BENCH_cache.json: require "
                             "cached_hit_speedup >= this ratio plus the "
                             "hit-rate floor and hit-cost ceiling from the "
                             "--baseline file")
    args = parser.parse_args()

    if args.min_blackout_improvement is not None:
        return check_reconfig(args)

    if args.min_cache_speedup is not None:
        return check_cache(args)

    if args.max_allocs is not None:
        try:
            data = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"check_perf: cannot read {args.fresh}: {e}")
        allocs = data.get("allocs_per_msg")
        if not isinstance(allocs, (int, float)):
            print("check_perf: FAIL — fresh file has no allocs_per_msg field")
            return 1
        legacy = data.get("legacy_allocs_per_msg")
        legacy_txt = f" (legacy path: {legacy:.2f})" if isinstance(
            legacy, (int, float)) else ""
        print(f"allocs/msg: {allocs:.4f}{legacy_txt} "
              f"[sha {data.get('git_sha', '?')}]")
        if allocs > args.max_allocs:
            print(f"check_perf: FAIL — {allocs:.4f} allocations/msg on the "
                  f"arena burst path (> {args.max_allocs:g} allowed)")
            return 1
        print(f"check_perf: OK — arena burst path allocates "
              f"{allocs:.4f}/msg (limit {args.max_allocs:g})")
        return 0

    base_data, base_ns = load(args.baseline)
    fresh_data, fresh_ns = load(args.fresh)

    base_mrps = 1e3 / base_ns   # messages per microsecond -> Mmsg/s at 1e3/ns
    fresh_mrps = 1e3 / fresh_ns
    # Throughput ratio; ns-per-msg is inversely proportional.
    drop = 1.0 - base_ns / fresh_ns
    print(f"baseline: {base_ns:.1f} ns/msg ({base_mrps:.2f} Mmsg/s) "
          f"[sha {base_data.get('git_sha', '?')}]")
    print(f"fresh:    {fresh_ns:.1f} ns/msg ({fresh_mrps:.2f} Mmsg/s) "
          f"[sha {fresh_data.get('git_sha', '?')}]")
    if drop > args.max_regress:
        print(f"check_perf: FAIL — obs-off compiled throughput regressed "
              f"{drop * 100:.1f}% (> {args.max_regress * 100:.0f}% allowed)")
        return 1
    if args.min_speedup is not None:
        speedup = fresh_data.get("burst_speedup")
        if not isinstance(speedup, (int, float)):
            print("check_perf: FAIL — fresh file has no burst_speedup field")
            return 1
        print(f"burst_speedup: {speedup:.2f}x (floor {args.min_speedup:.2f}x)")
        if speedup < args.min_speedup:
            print(f"check_perf: FAIL — burst speedup {speedup:.2f}x below "
                  f"{args.min_speedup:.2f}x floor")
            return 1
    if args.max_obs_overhead is not None:
        overhead = fresh_data.get("obs_overhead_frac")
        if not isinstance(overhead, (int, float)):
            print("check_perf: FAIL — fresh file has no obs_overhead_frac "
                  "field")
            return 1
        print(f"obs_overhead_frac: {overhead * 100:.1f}% "
              f"(limit {args.max_obs_overhead * 100:.0f}%)")
        if overhead > args.max_obs_overhead:
            print(f"check_perf: FAIL — telemetry-on burst overhead "
                  f"{overhead * 100:.1f}% exceeds "
                  f"{args.max_obs_overhead * 100:.0f}% bound")
            return 1
    verb = "regressed" if drop > 0 else "improved"
    print(f"check_perf: OK — throughput {verb} {abs(drop) * 100:.1f}% "
          f"(limit {args.max_regress * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
