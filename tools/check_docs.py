#!/usr/bin/env python3
"""Docs consistency checker (run by the CI docs job).

Three checks, all cheap enough for every push:

1. Every relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md,
   PAPER.md and docs/*.md must resolve to an existing file (anchors and
   external http(s)/mailto links are skipped).
2. Every `bench_*` target named in EXPERIMENTS.md must be declared in
   bench/CMakeLists.txt (adn_bench/adn_gbench) — the experiment index and
   the build may not drift apart.
3. Every backticked `adn_*` metric name in docs/OBSERVABILITY.md must
   appear somewhere under src/ — the documented telemetry contract may not
   list metrics the runtime no longer registers. (The reverse direction —
   the runtime registering undocumented names — is enforced at runtime by
   tests/test_obs.cc's contract tests.)
4. The reconfiguration contract: docs/RECONFIG.md must exist, every
   backticked `adn_*` name it cites must appear under src/, and every
   `adn_reconfig_*` metric literal under src/ must be documented in BOTH
   docs/RECONFIG.md (the contract that defines it) and
   docs/OBSERVABILITY.md (the telemetry index). Live migration ships with
   its paper trail or not at all.
5. Reconfig trace events, both directions: every backticked `reconfig.*`
   event name cited in docs/RECONFIG.md or docs/OBSERVABILITY.md must be a
   string literal under src/ (obs/event_ring.h defines them), and every
   "reconfig.*" literal under src/ must be documented in docs/RECONFIG.md
   ("Emitted events"). Renaming an event without updating the contract —
   or documenting one the runtime never emits — fails the push.

Exits 0 when clean, 1 with one line per problem otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [
    p for p in [REPO / "README.md", REPO / "DESIGN.md",
                REPO / "EXPERIMENTS.md", REPO / "PAPER.md"]
    if p.exists()
] + sorted((REPO / "docs").glob("*.md"))

# [text](target) — target captured up to the closing paren; images too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_RE = re.compile(r"\bbench_[a-z0-9_]+")
# Backticked metric names in the telemetry contract, e.g. `adn_slo_burn`.
METRIC_RE = re.compile(r"`(adn_[a-z0-9_]+)`")
# Backticked reconfig event names in docs, e.g. `reconfig.cutover`.
EVENT_DOC_RE = re.compile(r"`(reconfig\.[a-z_.]+)`")
# Reconfig event name string literals in source, e.g. "reconfig.cutover".
EVENT_SRC_RE = re.compile(r"\"(reconfig\.[a-z_.]+)\"")


def check_links():
    problems = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                line = text[:match.start()].count("\n") + 1
                problems.append(
                    f"{doc.relative_to(REPO)}:{line}: broken link '{target}'")
    return problems


def check_bench_targets():
    problems = []
    cmake = (REPO / "bench" / "CMakeLists.txt").read_text(encoding="utf-8")
    declared = set(re.findall(r"adn_g?bench\((bench_[a-z0-9_]+)\)", cmake))
    experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for lineno, line in enumerate(experiments.splitlines(), start=1):
        for match in BENCH_RE.finditer(line):
            # Skip file mentions like bench_output.txt.
            rest = line[match.end():]
            if rest.startswith("."):
                continue
            name = match.group(0)
            if name not in declared:
                problems.append(
                    f"EXPERIMENTS.md:{lineno}: bench target '{name}' is not "
                    f"declared in bench/CMakeLists.txt")
    return problems


def check_metric_names():
    problems = []
    doc = REPO / "docs" / "OBSERVABILITY.md"
    if not doc.exists():
        return problems
    src_text = "".join(
        p.read_text(encoding="utf-8")
        for p in sorted((REPO / "src").rglob("*"))
        if p.suffix in (".h", ".cc"))
    text = doc.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for name in set(METRIC_RE.findall(line)):
            if name not in src_text:
                problems.append(
                    f"docs/OBSERVABILITY.md:{lineno}: metric '{name}' does "
                    f"not appear anywhere under src/")
    return problems


def check_reconfig_contract():
    reconfig = REPO / "docs" / "RECONFIG.md"
    if not reconfig.exists():
        return ["docs/RECONFIG.md: missing — the reconfiguration contract "
                "must ship with the live-migration code"]
    problems = []
    src_files = [p for p in sorted((REPO / "src").rglob("*"))
                 if p.suffix in (".h", ".cc")]
    src_text = "".join(p.read_text(encoding="utf-8") for p in src_files)
    text = reconfig.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for name in set(METRIC_RE.findall(line)):
            if name not in src_text:
                problems.append(
                    f"docs/RECONFIG.md:{lineno}: metric '{name}' does not "
                    f"appear anywhere under src/")
    # Reverse direction: every reconfig metric the runtime registers must be
    # documented in both the contract and the telemetry index.
    obs_doc = REPO / "docs" / "OBSERVABILITY.md"
    obs_text = obs_doc.read_text(encoding="utf-8") if obs_doc.exists() else ""
    registered = set()
    for f in src_files:
        registered.update(
            re.findall(r"\badn_reconfig_[a-z0-9_]+",
                       f.read_text(encoding="utf-8")))
    for name in sorted(registered):
        if name not in text:
            problems.append(
                f"docs/RECONFIG.md: runtime metric '{name}' is not "
                f"documented in the reconfiguration contract")
        if name not in obs_text:
            problems.append(
                f"docs/OBSERVABILITY.md: runtime metric '{name}' is not "
                f"listed in the telemetry index")
    return problems


def check_reconfig_events():
    """Two-way reconfig.* trace-event name agreement (docs <-> src)."""
    problems = []
    src_files = [p for p in sorted((REPO / "src").rglob("*"))
                 if p.suffix in (".h", ".cc")]
    emitted = set()
    for f in src_files:
        emitted.update(EVENT_SRC_RE.findall(f.read_text(encoding="utf-8")))
    reconfig_doc = REPO / "docs" / "RECONFIG.md"
    reconfig_text = (reconfig_doc.read_text(encoding="utf-8")
                     if reconfig_doc.exists() else "")
    for doc in (reconfig_doc, REPO / "docs" / "OBSERVABILITY.md"):
        if not doc.exists():
            continue
        text = doc.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for name in set(EVENT_DOC_RE.findall(line)):
                if name not in emitted:
                    problems.append(
                        f"{doc.relative_to(REPO)}:{lineno}: reconfig event "
                        f"'{name}' is not a string literal under src/")
    for name in sorted(emitted):
        if f"`{name}`" not in reconfig_text:
            problems.append(
                f"docs/RECONFIG.md: runtime emits trace event '{name}' but "
                f"the contract's \"Emitted events\" section does not list it")
    return problems


def main():
    problems = (check_links() + check_bench_targets() + check_metric_names()
                + check_reconfig_contract() + check_reconfig_events())
    for p in problems:
        print(p)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    print(f"check_docs: OK ({len(DOC_FILES)} docs checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
