// adnc — the ADN compiler driver.
//
// Usage:
//   adnc <program.adn> [--check] [--emit-ebpf] [--emit-p4] [--headers]
//        [--placement <policy>] [--no-reorder] [--no-fuse]
//
// Reads a DSL program, compiles every chain, and prints what the control
// plane would deploy: optimization reports, per-element effect summaries,
// platform feasibility, synthesized per-link headers, and (on request) the
// generated eBPF / P4 artifacts. `--check` exits non-zero on any error
// without printing artifacts — usable as a CI lint for ADN programs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "compiler/compiler.h"
#include "controller/placement.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: adnc <program.adn> [--check] [--emit-ebpf] [--emit-p4]\n"
      "            [--headers] [--placement native|inapp|mincpu|minlat]\n"
      "            [--no-reorder] [--no-fuse]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adn;
  if (argc < 2) return Usage();

  std::string path;
  bool check_only = false, emit_ebpf = false, emit_p4 = false,
       show_headers = false;
  bool want_placement = false;
  controller::PlacementPolicy policy =
      controller::PlacementPolicy::kNativeOnly;
  compiler::CompileOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--emit-ebpf") {
      emit_ebpf = true;
    } else if (arg == "--emit-p4") {
      emit_p4 = true;
    } else if (arg == "--headers") {
      show_headers = true;
    } else if (arg == "--no-reorder") {
      options.passes.reorder_drop_early = false;
    } else if (arg == "--no-fuse") {
      options.passes.fuse_adjacent = false;
    } else if (arg == "--placement") {
      if (++i >= argc) return Usage();
      want_placement = true;
      std::string_view p = argv[i];
      if (p == "native") {
        policy = controller::PlacementPolicy::kNativeOnly;
      } else if (p == "inapp") {
        policy = controller::PlacementPolicy::kInApp;
      } else if (p == "mincpu") {
        policy = controller::PlacementPolicy::kMinHostCpu;
        options.passes.order_strategy = compiler::OrderStrategy::kOffloadSink;
      } else if (p == "minlat") {
        policy = controller::PlacementPolicy::kMinLatency;
        options.passes.order_strategy = compiler::OrderStrategy::kOffloadSink;
      } else {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage();

  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "adnc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  compiler::Compiler compiler;
  auto program = compiler.CompileSource(buffer.str(), options);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 program.status().ToString().c_str());
    return 1;
  }
  if (check_only) {
    std::printf("%s: OK (%zu chain%s)\n", path.c_str(),
                program->chains.size(),
                program->chains.size() == 1 ? "" : "s");
    return 0;
  }

  for (const auto& chain : program->chains) {
    std::printf("chain %s: %s -> %s\n", chain.name.c_str(),
                chain.caller_service.c_str(), chain.callee_service.c_str());
    for (const auto& report : chain.pass_reports) {
      std::printf("  [%s] %s\n", report.pass.c_str(), report.detail.c_str());
    }
    for (size_t i = 0; i < chain.elements.size(); ++i) {
      const auto& element = chain.elements[i];
      std::printf("  %-16s group=%d  %s\n", element.ir->name.c_str(),
                  chain.parallel_groups.empty() ? static_cast<int>(i)
                                                : chain.parallel_groups[i],
                  element.ir->effects.DebugString().c_str());
      std::printf("    ebpf: %s\n",
                  element.ebpf.feasible ? "ok" : element.ebpf.reason.c_str());
      std::printf("    p4  : %s\n",
                  element.p4.feasible ? "ok" : element.p4.reason.c_str());
    }
    if (show_headers) {
      for (size_t i = 0; i < chain.headers.link_specs.size(); ++i) {
        std::printf("  link %zu: %s\n", i,
                    chain.headers.link_specs[i].DebugString().c_str());
      }
    }
    if (want_placement) {
      controller::PathEnvironment env;
      env.sender_kernel_offload = true;
      env.receiver_kernel_offload = true;
      env.receiver_smartnic = true;
      env.p4_switch_on_path = true;
      env.trust_app_binaries =
          policy == controller::PlacementPolicy::kInApp;
      auto placement = controller::PlaceChain(chain, env, policy);
      if (placement.ok()) {
        std::printf("  placement(%s): %s\n",
                    controller::PlacementPolicyName(policy).data(),
                    placement->DebugString(chain).c_str());
      } else {
        std::printf("  placement(%s): %s\n",
                    controller::PlacementPolicyName(policy).data(),
                    placement.status().ToString().c_str());
      }
    }
    for (const auto& element : chain.elements) {
      if (emit_ebpf && element.ebpf.feasible) {
        std::printf("\n--- eBPF: %s ---\n%s", element.ir->name.c_str(),
                    element.ebpf_code.c_str());
      }
      if (emit_p4 && element.p4.feasible) {
        std::printf("\n--- P4: %s ---\n%s", element.ir->name.c_str(),
                    element.p4_code.c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
