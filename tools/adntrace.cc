// adntrace — Chrome-trace / Perfetto exporter for the ADN event rings.
//
// Usage:
//   adntrace [--rpcs N] [--sample N] [--workers N] [--reconfig] [--out FILE]
//
// Drives the Figure-5 chain (Logging, Acl, Fault) through a multi-worker
// EnginePool with the obs plane fully on — metrics AND sampled tracing —
// which exercises the burst-mode telemetry path end to end: workers run
// the SoA burst executor, span/burst records land in each worker's SPSC
// event ring (obs/event_ring.h), and this tool drains the rings and writes
// Chrome-trace ("Trace Event Format") JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev.
//
// Each span becomes a complete ("ph":"X") event on its processor's thread
// row; burst markers become "burst" events with args.lanes; with
// --reconfig the tool also runs one live slot migration plus a DSL
// hot-swap mid-traffic, so the reconfig.* instant events (docs/RECONFIG.md
// "Emitted events") line up against the data-plane spans on the timeline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "mrpc/engine_pool.h"
#include "obs/event_ring.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: adntrace [--rpcs N] [--sample N] [--workers N] [--reconfig] "
      "[--out FILE]\n"
      "  --rpcs     RPCs to drive through the fig5 pool (default 2000)\n"
      "  --sample   trace 1 in N RPCs (default 100)\n"
      "  --workers  pool workers / event rings (default 2)\n"
      "  --reconfig run a live slot migration + program hot-swap mid-run\n"
      "             so reconfig.* instant events appear on the timeline\n"
      "  --out      write the Chrome-trace JSON here (default stdout)\n");
  return 2;
}

std::string User(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%03llu",
                static_cast<unsigned long long>(i % 64));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adn;

  uint64_t rpcs = 2000;
  uint64_t sample_every = 100;
  int workers = 2;
  bool reconfig = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--rpcs" && i + 1 < argc) {
      rpcs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sample" && i + 1 < argc) {
      sample_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--reconfig") {
      reconfig = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }
  if (workers < 1) return Usage();

  obs::SetEnabled(true);
  obs::Tracer::Default().SetTracingEnabled(true);
  obs::Tracer::Default().SetSampleEvery(sample_every);

  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lower: %s\n", lowered.status().ToString().c_str());
    return 1;
  }
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered->FindElement("Logging"), lowered->FindElement("Acl"),
      lowered->FindElement("Fault")};
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : elements) raw.push_back(e.get());
  const std::vector<int> groups = ir::PartitionIntoParallelGroups(raw);

  mrpc::EnginePool::Config config;
  config.workers = workers;
  config.shard_key_field = "username";
  config.processor = "adntrace";
  mrpc::EnginePool pool(elements, groups, config);
  rpc::Table* acl = pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  for (uint64_t i = 0; i < 64; ++i) {
    (void)acl->Insert({rpc::Value(User(i)), rpc::Value("W")});
  }
  if (Status s = pool.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  auto drive = [&](uint64_t base, uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t id = base + i;
      pool.Submit(rpc::Message::MakeRequest(
          id, "Obj.Put",
          {{"username", rpc::Value(User(id * 2654435761ULL))},
           {"payload", rpc::Value(Bytes(64, static_cast<uint8_t>(id)))}}));
    }
  };

  drive(0, rpcs / 2);
  pool.Drain();

  if (reconfig) {
    // A live slot migration (needs a second worker to move the slot to) ...
    if (workers >= 2) {
      if (Status s = pool.BeginSlotMigration(/*slot=*/0, /*to_worker=*/1);
          !s.ok()) {
        std::fprintf(stderr, "migrate: %s\n", s.ToString().c_str());
        return 1;
      }
      uint64_t base = rpcs;
      while (pool.PumpMigration() != mrpc::EnginePool::MigrationPhase::kDone) {
        drive(base, 16);  // keep traffic flowing through the cutover
        base += 16;
      }
    } else {
      std::fprintf(stderr, "--reconfig migration skipped: 1 worker\n");
    }
    // ... and a DSL hot-swap (same source recompiled -> new version).
    auto reparsed = dsl::ParseProgram(elements::Fig5ProgramSource());
    auto relowered = compiler::LowerProgram(*reparsed);
    std::vector<std::shared_ptr<const ir::ElementIr>> swapped = {
        relowered->FindElement("Logging"), relowered->FindElement("Acl"),
        relowered->FindElement("Fault")};
    if (Status s = pool.SwapProgram(swapped); !s.ok()) {
      std::fprintf(stderr, "swap: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  drive(rpcs, rpcs - rpcs / 2);
  pool.Drain();
  pool.Stop();

  // Ring health before the drain consumes them (depth collapses to 0 after).
  std::fprintf(stderr, "event rings:\n");
  for (const auto& rs : obs::EventRingRegistry::Default().Stats()) {
    std::fprintf(stderr, "  %-16s depth %zu/%zu  emitted %llu  dropped %llu\n",
                 std::string(rs.label.empty() ? "(unlabeled)" : rs.label)
                     .c_str(),
                 rs.depth, rs.capacity,
                 static_cast<unsigned long long>(rs.emitted),
                 static_cast<unsigned long long>(rs.dropped));
  }

  const std::string json = obs::ExportChromeTraceJson();
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu bytes) — load in chrome://tracing\n",
                 out_path.c_str(), json.size());
  }
  return 0;
}
