// adntop — observability console for the ADN data plane.
//
// Usage:
//   adntop [--json] [--watch N] [--rpcs N] [--sample N] [--ring N]
//
// Drives the Figure-5 chain (Logging, Acl, Fault) through an in-process
// mRPC engine with the obs plane enabled, then renders what the telemetry
// contract (docs/OBSERVABILITY.md) exposes: the metrics registry as a
// table, the most recent sampled RPC as a span tree, and the controller's
// scaling read of the same data. `--json` instead dumps the whole plane
// via adn::obs::ExportJson() — the machine-readable form consumed by
// scripts and by bench_breakdown.
//
// `--watch N` switches to the windowed view: N report ticks, each driving
// one batch of RPCs and then rendering that *window's* telemetry — rates
// and per-element quantiles derived by obs::WindowedSeries snapshot
// diffing (cumulative counters never appear), plus the controller's
// per-window scaling advice. It is the same series->hub pipeline the live
// autoscaler runs inside bench_autoscale, rendered as a console.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compiler/lower.h"
#include "controller/telemetry.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "mrpc/engine.h"
#include "obs/event_ring.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: adntop [--json] [--watch N] [--rpcs N] [--sample N] "
               "[--ring N]\n"
               "  --json    dump metrics + traces as JSON (obs::ExportJson)\n"
               "  --watch   render N windowed report ticks (rates + window\n"
               "            quantiles from snapshot diffs) instead of the\n"
               "            cumulative table\n"
               "  --rpcs    RPCs to drive through the fig5 chain per tick "
               "(default 1000)\n"
               "  --sample  trace 1 in N RPCs (default 100)\n"
               "  --ring    span ring capacity (default 4096)\n");
  return 2;
}

// The obs plane watching itself: spans evicted / events dropped counters,
// per-ring depth, and the measured obs-on overhead (one line each).
void PrintObsHealth(double obs_overhead_frac) {
  // Drain the rings first so the event counters are synced (they fold in
  // at drain time, not per emit — see docs/OBSERVABILITY.md).
  adn::obs::Tracer::Default().Collect();
  adn::obs::MetricsRegistry& reg = adn::obs::MetricsRegistry::Default();
  std::printf("\nobs plane health:\n");
  std::printf(
      "  events=%llu dropped=%llu spans=%llu evicted=%llu  overhead=%.1f%%\n",
      static_cast<unsigned long long>(
          reg.GetCounter("adn_obs_events_total").Value()),
      static_cast<unsigned long long>(
          reg.GetCounter("adn_obs_events_dropped_total").Value()),
      static_cast<unsigned long long>(
          reg.GetCounter("adn_obs_spans_total").Value()),
      static_cast<unsigned long long>(
          reg.GetCounter("adn_obs_spans_evicted_total").Value()),
      obs_overhead_frac * 100.0);
  for (const auto& rs : adn::obs::EventRingRegistry::Default().Stats()) {
    std::printf("  ring %-16s depth %zu/%zu  emitted %llu  dropped %llu\n",
                std::string(rs.label.empty() ? "(main)" : rs.label).c_str(),
                rs.depth, rs.capacity,
                static_cast<unsigned long long>(rs.emitted),
                static_cast<unsigned long long>(rs.dropped));
  }
}

// Window quantile via the shared bucket math (obs::SnapshotHistogram), the
// same implementation the telemetry hub and bench_breakdown use.
double SampleQuantile(const adn::obs::MetricSample& s, double q) {
  return adn::obs::SnapshotHistogram::FromSample(s).Quantile(q);
}

void PrintSpanTree(const std::vector<adn::obs::Span>& spans,
                   uint64_t parent_id, int depth) {
  for (const adn::obs::Span& s : spans) {
    if (s.parent_id != parent_id) continue;
    std::printf("  %*s%s  [%s/%s]  %lld ns\n", depth * 2, "",
                std::string(s.name()).c_str(),
                std::string(adn::obs::TierName(s.tier)).c_str(),
                std::string(s.processor()).c_str(),
                static_cast<long long>(s.end_ns - s.start_ns));
    PrintSpanTree(spans, s.span_id, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adn;

  bool json = false;
  uint64_t watch_ticks = 0;
  uint64_t rpcs = 1000;
  uint64_t sample_every = 100;
  size_t ring = 4096;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--watch" && i + 1 < argc) {
      watch_ticks = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--rpcs" && i + 1 < argc) {
      rpcs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sample" && i + 1 < argc) {
      sample_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ring" && i + 1 < argc) {
      ring = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }

  obs::SetEnabled(true);
  obs::Tracer::Default().SetTracingEnabled(true);
  obs::Tracer::Default().SetSampleEvery(sample_every);
  obs::Tracer::Default().SetRingCapacity(ring);

  // Build the fig5 engine chain the same way the controller would deploy it.
  auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto lowered = compiler::LowerProgram(*parsed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lower: %s\n", lowered.status().ToString().c_str());
    return 1;
  }
  mrpc::EngineChain chain;
  chain.set_trace_identity(obs::Tier::kEngine, "adntop-engine");
  for (const char* name : {"Logging", "Acl", "Fault"}) {
    auto element = lowered->FindElement(name);
    if (element == nullptr) {
      std::fprintf(stderr, "fig5 element missing: %s\n", name);
      return 1;
    }
    auto stage = std::make_unique<mrpc::GeneratedStage>(element, /*seed=*/7);
    if (std::strcmp(name, "Acl") == 0) {
      for (const char* user : {"alice", "bob", "carol", "dave"}) {
        (void)stage->instance().FindTable("ac_tab")->Insert(
            {rpc::Value(std::string(user)), rpc::Value("W")});
      }
    }
    chain.AddStage(std::move(stage));
  }

  const char* users[] = {"alice", "bob", "carol", "dave"};
  auto drive = [&](uint64_t base_id, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t id = base_id + i;
      rpc::Message m = rpc::Message::MakeRequest(
          id, "Echo",
          {{"username", rpc::Value(std::string(users[id % 4]))},
           {"object_id", rpc::Value(static_cast<int64_t>(id))},
           {"payload", rpc::Value(Bytes{1, 2, 3, 4})}});
      (void)chain.Process(m, static_cast<int64_t>(id));
    }
  };

  // Measure the obs-on overhead on this host: same chain, same message
  // count, obs off then on (tracing + sampling as configured above). The
  // rigorous version of this number is bench_obs / BENCH_obs.json; this is
  // the live console read of the same ratio.
  const uint64_t calib = std::min<uint64_t>(rpcs, 2000);
  obs::SetEnabled(false);
  drive(3'000'000'000ULL, calib);  // warmup: both timed runs see a hot chain
  int64_t calib_t0 = obs::NowNs();
  drive(1'000'000'000ULL, calib);
  const int64_t calib_off_ns = obs::NowNs() - calib_t0;
  obs::SetEnabled(true);
  calib_t0 = obs::NowNs();
  drive(2'000'000'000ULL, calib);
  const int64_t calib_on_ns = obs::NowNs() - calib_t0;
  const double obs_overhead =
      calib_off_ns > 0
          ? static_cast<double>(calib_on_ns) / static_cast<double>(calib_off_ns) -
                1.0
          : 0.0;

  // --- Watch mode: windowed report ticks -----------------------------------
  if (watch_ticks > 0) {
    obs::WindowedSeries series;
    controller::TelemetryHub hub;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    const std::string proc_labels = "processor=\"adntop-engine\"";
    std::printf(
        "%-6s %10s %10s %10s %8s %8s  %s\n", "TICK", "RPCS/S", "DROPS/S",
        "p99(ns)", "RINGMAX", "EVDROP",
        "per-element window p50/p99 (adn_element_latency_ns deltas)");
    int64_t window_start = obs::NowNs();
    for (uint64_t tick = 0; tick < watch_ticks; ++tick) {
      drive(tick * rpcs, rpcs);
      const int64_t window_end = obs::NowNs();
      obs::MetricsSnapshot snap = reg.Snapshot();
      series.Ingest(snap, window_start, window_end);
      if (Status s = hub.IngestSnapshot(snap, window_start, window_end);
          !s.ok()) {
        std::fprintf(stderr, "ingest: %s\n", s.ToString().c_str());
        return 1;
      }
      std::string elements_out;
      double p99 = 0;
      for (const obs::MetricSample& s : snap.samples) {
        if (s.name != "adn_element_latency_ns") continue;
        const obs::SnapshotHistogram* delta =
            series.HistogramDelta(s.name, s.labels);
        if (delta == nullptr || delta->empty()) continue;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "  %s %.0f/%.0f", s.labels.c_str(),
                      delta->Quantile(0.50), delta->Quantile(0.99));
        elements_out += buf;
        p99 = std::max(p99, delta->Quantile(0.99));
      }
      // Obs self-health for this tick: deepest event ring (backlog before
      // the next drain) and cumulative producer-side drops.
      size_t ring_max = 0;
      uint64_t ev_dropped = 0;
      for (const auto& rs : obs::EventRingRegistry::Default().Stats()) {
        ring_max = std::max(ring_max, rs.depth);
        ev_dropped += rs.dropped;
      }
      std::printf("%-6llu %10.0f %10.0f %10.0f %8zu %8llu%s\n",
                  static_cast<unsigned long long>(tick),
                  series.CounterRatePerSec("adn_chain_rpcs_total",
                                           proc_labels),
                  series.CounterRatePerSec("adn_chain_drops_total",
                                           proc_labels),
                  p99, ring_max,
                  static_cast<unsigned long long>(ev_dropped),
                  elements_out.c_str());
      window_start = window_end;
    }
    std::printf("\ncontroller advice (windowed feed):\n");
    std::printf("  adntop-engine: util=%.2f advice=%s  drop-alerts:%zu\n",
                hub.SmoothedUtilization("adntop-engine"),
                std::string(controller::ScalingAdviceName(
                                hub.Advise("adntop-engine")))
                    .c_str(),
                hub.DropAlerts().size());
    PrintObsHealth(obs_overhead);
    return 0;
  }

  drive(0, rpcs);

  if (json) {
    std::printf("%s\n", obs::ExportJson().c_str());
    return 0;
  }

  // --- Metrics table -------------------------------------------------------
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  std::printf("%-28s %-28s %-10s %14s\n", "METRIC", "LABELS", "KIND",
              "VALUE");
  for (const obs::MetricSample& s : snap.samples) {
    if (s.kind == obs::MetricKind::kHistogram) {
      std::printf("%-28s %-28s %-10s %14s  count=%llu p50=%.0fns p99=%.0fns\n",
                  s.name.c_str(), s.labels.c_str(), "histogram", "-",
                  static_cast<unsigned long long>(s.count),
                  SampleQuantile(s, 0.50), SampleQuantile(s, 0.99));
    } else {
      std::printf("%-28s %-28s %-10s %14.0f\n", s.name.c_str(),
                  s.labels.c_str(),
                  std::string(obs::MetricKindName(s.kind)).c_str(), s.value);
    }
  }

  // --- Latest sampled trace ------------------------------------------------
  obs::Tracer& tracer = obs::Tracer::Default();
  std::vector<uint64_t> ids = tracer.TraceIds();
  if (!ids.empty()) {
    const uint64_t last = ids.back();
    std::printf("\ntrace %llu (1 in %llu sampled):\n",
                static_cast<unsigned long long>(last),
                static_cast<unsigned long long>(sample_every));
    std::vector<obs::Span> spans = tracer.SpansForTrace(last);
    // Roots are spans whose parent is not resident in the trace (one per
    // processor scope).
    for (const obs::Span& s : spans) {
      bool has_parent = false;
      for (const obs::Span& other : spans) {
        if (other.span_id == s.parent_id) has_parent = true;
      }
      if (has_parent) continue;
      std::printf("  %s  [%s/%s]  %lld ns\n",
                  std::string(s.name()).c_str(),
                  std::string(obs::TierName(s.tier)).c_str(),
                  std::string(s.processor()).c_str(),
                  static_cast<long long>(s.end_ns - s.start_ns));
      PrintSpanTree(spans, s.span_id, 1);
    }
  }

  // --- Controller's read (Figure 3 feedback) -------------------------------
  controller::TelemetryHub hub;
  if (Status s = hub.IngestSnapshot(snap, 0, 1); !s.ok()) {
    std::fprintf(stderr, "ingest: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\ncontroller advice:\n");
  std::printf("  adntop-engine: util=%.2f advice=%s\n",
              hub.SmoothedUtilization("adntop-engine"),
              std::string(controller::ScalingAdviceName(
                              hub.Advise("adntop-engine")))
                  .c_str());
  PrintObsHealth(obs_overhead);
  return 0;
}
