// IR tests: lowering + type checking, effect summaries, element execution
// semantics, commutativity/parallelism analysis, state snapshots.
#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "ir/exec.h"

namespace adn::ir {
namespace {

using compiler::LowerProgram;
using rpc::Message;
using rpc::Value;
using rpc::ValueType;

// Lower a one-element program and return the element.
std::shared_ptr<const ElementIr> LowerOne(const std::string& source) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(program->elements.empty());
  return program->elements[0];
}

Status LowerExpectError(const std::string& source) {
  auto parsed = dsl::ParseProgram(source);
  if (!parsed.ok()) return parsed.status();
  auto program = LowerProgram(*parsed);
  EXPECT_FALSE(program.ok()) << "lowering unexpectedly succeeded";
  return program.status();
}

// --- Type checking ---------------------------------------------------------------

TEST(Lowering, UnknownInputFieldRejected) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (x INT); SELECT * FROM input WHERE y > 0; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kNotFound);
  EXPECT_NE(s.error().message().find("'y'"), std::string::npos);
}

TEST(Lowering, UnknownTableRejected) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (x INT); SELECT * FROM input JOIN ghost ON x = "
      "ghost.a; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kNotFound);
}

TEST(Lowering, UnknownFunctionRejected) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (x INT); SELECT *, frobnicate(x) AS y FROM input; }");
  EXPECT_NE(s.error().message().find("frobnicate"), std::string::npos);
}

TEST(Lowering, ArityChecked) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (p BYTES); SELECT *, compress(p, p) AS p FROM "
      "input; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kTypeError);
}

TEST(Lowering, ArgTypeChecked) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (x INT); SELECT *, compress(x) AS y FROM input; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kTypeError);
}

TEST(Lowering, WhereMustBeBool) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (x INT); SELECT * FROM input WHERE x + 1; }");
  EXPECT_NE(s.error().message().find("WHERE"), std::string::npos);
}

TEST(Lowering, ComparingTextWithIntRejected) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (u TEXT); SELECT * FROM input WHERE u = 3; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kTypeError);
}

TEST(Lowering, ArithmeticOnTextRejected) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (u TEXT); SELECT *, u * 2 AS v FROM input; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kTypeError);
}

TEST(Lowering, ModWantsInts) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (f FLOAT); SELECT * FROM input WHERE f % 2 = 0; }");
  EXPECT_EQ(s.error().code(), ErrorCode::kTypeError);
}

TEST(Lowering, DestinationMustBeInt) {
  Status s = LowerExpectError(
      "ELEMENT E { INPUT (u TEXT); SELECT *, u AS __destination FROM "
      "input; }");
  EXPECT_NE(s.error().message().find("__destination"), std::string::npos);
}

TEST(Lowering, AmbiguousBareNameRejected) {
  Status s = LowerExpectError(R"(
    STATE TABLE t (x INT PRIMARY KEY, y INT);
    ELEMENT E {
      INPUT (x INT);
      SELECT * FROM input JOIN t ON input.x = t.x WHERE x > 0;
    }
  )");
  EXPECT_NE(s.error().message().find("ambiguous"), std::string::npos);
}

TEST(Lowering, JoinKeyTypeMismatchRejected) {
  Status s = LowerExpectError(R"(
    STATE TABLE t (k TEXT PRIMARY KEY, v INT);
    ELEMENT E {
      INPUT (x INT);
      SELECT * FROM input JOIN t ON x = t.k;
    }
  )");
  EXPECT_NE(s.error().message().find("join key type"), std::string::npos);
}

TEST(Lowering, JoinBothSidesInputRejected) {
  Status s = LowerExpectError(R"(
    STATE TABLE t (k INT PRIMARY KEY);
    ELEMENT E {
      INPUT (x INT, y INT);
      SELECT * FROM input JOIN t ON x = y;
    }
  )");
  EXPECT_NE(s.error().message().find("JOIN ON"), std::string::npos);
}

TEST(Lowering, InsertColumnCountChecked) {
  Status s = LowerExpectError(R"(
    STATE TABLE t (a INT, b INT);
    ELEMENT E { INPUT (x INT); INSERT INTO t VALUES (x); SELECT * FROM input; }
  )");
  EXPECT_NE(s.error().message().find("1 value(s) for 2"), std::string::npos);
}

TEST(Lowering, InsertColumnTypeChecked) {
  Status s = LowerExpectError(R"(
    STATE TABLE t (a INT);
    ELEMENT E { INPUT (u TEXT); INSERT INTO t VALUES (u); SELECT * FROM input; }
  )");
  EXPECT_EQ(s.error().code(), ErrorCode::kTypeError);
}

TEST(Lowering, SelectFromMustBeInput) {
  Status s = LowerExpectError(
      "STATE TABLE t (a INT); ELEMENT E { INPUT (x INT); SELECT * FROM t; }");
  EXPECT_NE(s.error().message().find("FROM input"), std::string::npos);
}

TEST(Lowering, SchemaEvolutionAcrossStatements) {
  // The second statement reads the field the first one created.
  auto element = LowerOne(R"(
    ELEMENT E {
      INPUT (x INT);
      SELECT *, x * 2 AS doubled FROM input;
      SELECT * FROM input WHERE doubled > 10;
    }
  )");
  ASSERT_NE(element, nullptr);
  EXPECT_TRUE(element->effects.WritesField("doubled"));
}

TEST(Lowering, UnknownFilterOpRejected) {
  Status s = LowerExpectError("FILTER F USING teleport(x => 1);");
  EXPECT_NE(s.error().message().find("teleport"), std::string::npos);
}

TEST(Lowering, FilterMissingRequiredArg) {
  Status s = LowerExpectError("FILTER F USING rate_limit(burst => 5);");
  EXPECT_NE(s.error().message().find("rps"), std::string::npos);
}

TEST(Lowering, FilterUnknownArgRejected) {
  Status s =
      LowerExpectError("FILTER F USING rate_limit(rps => 5, speed => 9);");
  EXPECT_NE(s.error().message().find("speed"), std::string::npos);
}

TEST(Lowering, ChainUnknownElementRejected) {
  Status s = LowerExpectError("CHAIN c FOR CALLS a -> b { Ghost }");
  EXPECT_NE(s.error().message().find("Ghost"), std::string::npos);
}

// --- Effects ----------------------------------------------------------------------

TEST(Effects, AclSummary) {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::AclSql()));
  ASSERT_TRUE(parsed.ok());
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& eff = program->elements[0]->effects;
  EXPECT_TRUE(eff.ReadsField("username"));
  EXPECT_TRUE(eff.fields_written.empty());
  EXPECT_EQ(eff.tables_read, std::vector<std::string>{"ac_tab"});
  EXPECT_TRUE(eff.tables_written.empty());
  EXPECT_TRUE(eff.may_drop);
  EXPECT_FALSE(eff.nondeterministic);
}

TEST(Effects, LoggingSummary) {
  auto parsed = dsl::ParseProgram(std::string(elements::LogTableSql()) +
                                  std::string(elements::LoggingSql()));
  ASSERT_TRUE(parsed.ok());
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  const auto& eff = program->elements[0]->effects;
  EXPECT_FALSE(eff.may_drop);
  EXPECT_EQ(eff.tables_written, std::vector<std::string>{"log_tab"});
  EXPECT_TRUE(eff.reads_metadata);  // rpc_id()
}

TEST(Effects, FaultSummary) {
  auto parsed = dsl::ParseProgram(std::string(elements::FaultSql()));
  ASSERT_TRUE(parsed.ok());
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  const auto& eff = program->elements[0]->effects;
  EXPECT_TRUE(eff.may_drop);
  EXPECT_TRUE(eff.nondeterministic);
  EXPECT_TRUE(eff.fields_read.empty());  // random() reads nothing
}

TEST(Effects, LbSetsDestination) {
  auto parsed = dsl::ParseProgram(std::string(elements::EndpointsTableSql()) +
                                  std::string(elements::HashLbSql()));
  ASSERT_TRUE(parsed.ok());
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& eff = program->elements[0]->effects;
  EXPECT_TRUE(eff.sets_destination);
  EXPECT_TRUE(eff.ReadsField("object_id"));
}

TEST(Effects, IdentityProjectionIsNotAWrite) {
  auto element = LowerOne(
      "ELEMENT E { INPUT (x INT, y INT); SELECT x, y FROM input; }");
  EXPECT_TRUE(element->effects.fields_written.empty());
}

TEST(Effects, ComputedOverwriteIsAWrite) {
  auto element = LowerOne(
      "ELEMENT E { INPUT (p BYTES); SELECT *, compress(p) AS p FROM input; }");
  EXPECT_TRUE(element->effects.WritesField("p"));
  EXPECT_TRUE(element->effects.ReadsField("p"));
}

// --- Execution --------------------------------------------------------------------

class AclExecution : public ::testing::Test {
 protected:
  AclExecution() {
    auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                    std::string(elements::AclSql()));
    auto program = LowerProgram(*parsed);
    instance_ = std::make_unique<ElementInstance>(program->elements[0], 1);
    rpc::Table* table = instance_->FindTable("ac_tab");
    (void)table->Insert({Value("alice"), Value("W")});
    (void)table->Insert({Value("bob"), Value("R")});
  }
  std::unique_ptr<ElementInstance> instance_;
};

TEST_F(AclExecution, AllowsWriters) {
  Message m = Message::MakeRequest(1, "M", {{"username", Value("alice")},
                                            {"payload", Value(Bytes{1})}});
  EXPECT_EQ(instance_->Process(m, 0).outcome, ProcessOutcome::kPass);
}

TEST_F(AclExecution, DeniesReaders) {
  Message m = Message::MakeRequest(1, "M", {{"username", Value("bob")},
                                            {"payload", Value(Bytes{1})}});
  ProcessResult r = instance_->Process(m, 0);
  EXPECT_EQ(r.outcome, ProcessOutcome::kDropAbort);
  EXPECT_EQ(r.abort_message, "permission denied");
}

TEST_F(AclExecution, DeniesUnknownUsers) {
  Message m = Message::MakeRequest(1, "M", {{"username", Value("mallory")},
                                            {"payload", Value(Bytes{1})}});
  EXPECT_EQ(instance_->Process(m, 0).outcome, ProcessOutcome::kDropAbort);
}

TEST_F(AclExecution, StatsCount) {
  Message ok = Message::MakeRequest(1, "M", {{"username", Value("alice")},
                                             {"payload", Value(Bytes{})}});
  Message bad = Message::MakeRequest(2, "M", {{"username", Value("bob")},
                                              {"payload", Value(Bytes{})}});
  (void)instance_->Process(ok, 0);
  (void)instance_->Process(bad, 0);
  EXPECT_EQ(instance_->processed(), 2u);
  EXPECT_EQ(instance_->dropped(), 1u);
}

TEST(Execution, LoggingInsertsRows) {
  auto parsed = dsl::ParseProgram(std::string(elements::LogTableSql()) +
                                  std::string(elements::LoggingSql()));
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  ElementInstance instance(program->elements[0], 1);
  Message m = Message::MakeRequest(42, "M",
                                   {{"username", Value("alice")},
                                    {"payload", Value(Bytes(10))}});
  ASSERT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kPass);
  const rpc::Table* log = instance.FindTable("log_tab");
  ASSERT_EQ(log->RowCount(), 1u);
  const rpc::Row& row = log->rows()[0];
  EXPECT_EQ(row[0].AsInt(), 42);
  EXPECT_EQ(row[1].AsText(), "alice");
  EXPECT_EQ(row[2].AsInt(), 10);
}

TEST(Execution, FaultDropsApproximatelyFivePercent) {
  auto parsed = dsl::ParseProgram(std::string(elements::FaultSql()));
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  ElementInstance instance(program->elements[0], 7);
  int dropped = 0;
  constexpr int kTotal = 20000;
  for (int i = 0; i < kTotal; ++i) {
    Message m = Message::MakeRequest(static_cast<uint64_t>(i), "M",
                                     {{"payload", Value(Bytes{1})}});
    if (instance.Process(m, 0).outcome != ProcessOutcome::kPass) ++dropped;
  }
  EXPECT_NEAR(dropped / static_cast<double>(kTotal), 0.05, 0.01);
}

TEST(Execution, FaultIsDeterministicPerSeed) {
  auto parsed = dsl::ParseProgram(std::string(elements::FaultSql()));
  auto program = LowerProgram(*parsed);
  ElementInstance a(program->elements[0], 99);
  ElementInstance b(program->elements[0], 99);
  for (int i = 0; i < 1000; ++i) {
    Message ma = Message::MakeRequest(static_cast<uint64_t>(i), "M",
                                      {{"payload", Value(Bytes{1})}});
    Message mb = ma;
    EXPECT_EQ(a.Process(ma, 0).outcome, b.Process(mb, 0).outcome);
  }
}

TEST(Execution, HashLbRoutesToOwnedShard) {
  auto parsed = dsl::ParseProgram(std::string(elements::EndpointsTableSql()) +
                                  std::string(elements::HashLbSql()));
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ElementInstance instance(program->elements[0], 1);
  rpc::Table* endpoints = instance.FindTable("endpoints");
  for (int shard = 0; shard < elements::kLbShards; ++shard) {
    (void)endpoints->Insert(
        {Value(shard), Value(100 + shard % 2)});  // two backends
  }
  int to_100 = 0, to_101 = 0;
  for (int i = 0; i < 1000; ++i) {
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"object_id", Value(i)}, {"payload", Value(Bytes{1})}});
    ASSERT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kPass);
    if (m.destination() == 100) {
      ++to_100;
    } else if (m.destination() == 101) {
      ++to_101;
    }
  }
  EXPECT_EQ(to_100 + to_101, 1000);
  EXPECT_GT(to_100, 300);  // roughly balanced
  EXPECT_GT(to_101, 300);
  // Same object id always routes the same way (consistent).
  Message m1 = Message::MakeRequest(
      1, "M", {{"object_id", Value(777)}, {"payload", Value(Bytes{1})}});
  Message m2 = m1;
  (void)instance.Process(m1, 0);
  (void)instance.Process(m2, 0);
  EXPECT_EQ(m1.destination(), m2.destination());
}

TEST(Execution, LbAbortsWhenNoBackends) {
  auto parsed = dsl::ParseProgram(std::string(elements::EndpointsTableSql()) +
                                  std::string(elements::HashLbSql()));
  auto program = LowerProgram(*parsed);
  ElementInstance instance(program->elements[0], 1);
  Message m = Message::MakeRequest(
      1, "M", {{"object_id", Value(1)}, {"payload", Value(Bytes{1})}});
  ProcessResult r = instance.Process(m, 0);
  EXPECT_EQ(r.outcome, ProcessOutcome::kDropAbort);
  EXPECT_EQ(r.abort_message, "no backend for shard");
}

TEST(Execution, CompressDecompressChainRestoresPayload) {
  auto parsed = dsl::ParseProgram(std::string(elements::CompressSql()) +
                                  std::string(elements::DecompressSql()));
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  ElementInstance compress(program->FindElement("Compress"), 1);
  ElementInstance decompress(program->FindElement("Decompress"), 2);
  Bytes payload(3000, 'z');
  Message m = Message::MakeRequest(1, "M", {{"payload", Value(payload)}});
  ASSERT_EQ(compress.Process(m, 0).outcome, ProcessOutcome::kPass);
  EXPECT_LT(m.GetFieldOrNull("payload").AsBytes().size(), payload.size());
  ASSERT_EQ(decompress.Process(m, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(m.GetFieldOrNull("payload").AsBytes(), payload);
}

TEST(Execution, QuotaDecrementsAndDenies) {
  auto parsed = dsl::ParseProgram(std::string(elements::QuotaTableSql()) +
                                  std::string(elements::QuotaSql()));
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ElementInstance instance(program->elements[0], 1);
  (void)instance.FindTable("quota")->Insert({Value("alice"), Value(2)});
  auto send = [&] {
    Message m =
        Message::MakeRequest(1, "M", {{"username", Value("alice")}});
    return instance.Process(m, 0).outcome;
  };
  EXPECT_EQ(send(), ProcessOutcome::kPass);
  EXPECT_EQ(send(), ProcessOutcome::kPass);
  EXPECT_EQ(send(), ProcessOutcome::kDropAbort);  // quota exhausted
}

TEST(Execution, TelemetryCountsPerMethod) {
  auto parsed = dsl::ParseProgram(std::string(elements::TelemetryTableSql()) +
                                  std::string(elements::TelemetrySql()));
  auto program = LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ElementInstance instance(program->elements[0], 1);
  rpc::Table* counters = instance.FindTable("telemetry");
  (void)counters->Insert({Value("Store.Get"), Value(0)});
  (void)counters->Insert({Value("Store.Put"), Value(0)});
  for (int i = 0; i < 5; ++i) {
    Message m = Message::MakeRequest(static_cast<uint64_t>(i), "Store.Get",
                                     {{"payload", Value(Bytes{})}});
    ASSERT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kPass);
  }
  auto rows = counters->LookupByKey({Value("Store.Get")});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[1].AsInt(), 5);
  EXPECT_EQ((*counters->LookupByKey({Value("Store.Put")})[0])[1].AsInt(), 0);
}

TEST(Execution, StrictProjectionDropsOtherFields) {
  auto element = LowerOne(
      "ELEMENT E { INPUT (x INT, y INT); SELECT x FROM input; }");
  ElementInstance instance(element, 1);
  Message m =
      Message::MakeRequest(1, "M", {{"x", Value(1)}, {"y", Value(2)}});
  ASSERT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kPass);
  EXPECT_TRUE(m.HasField("x"));
  EXPECT_FALSE(m.HasField("y"));
}

TEST(Execution, SilentDropBehavior) {
  auto element = LowerOne(R"(
    ELEMENT E { INPUT (x INT); ON DROP SILENT; SELECT * FROM input WHERE x > 0; }
  )");
  ElementInstance instance(element, 1);
  Message m = Message::MakeRequest(1, "M", {{"x", Value(-1)}});
  EXPECT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kDropSilent);
}

TEST(Execution, DivisionByZeroYieldsNullNotCrash) {
  auto element = LowerOne(
      "ELEMENT E { INPUT (x INT); SELECT * FROM input WHERE 10 / x > 1; }");
  ElementInstance instance(element, 1);
  Message m = Message::MakeRequest(1, "M", {{"x", Value(0)}});
  // NULL predicate => drop, not crash.
  EXPECT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kDropAbort);
}

TEST(Execution, MissingFieldIsNullAndDrops) {
  auto element = LowerOne(
      "ELEMENT E { INPUT (x INT); SELECT * FROM input WHERE x > 0; }");
  ElementInstance instance(element, 1);
  Message m = Message::MakeRequest(1, "M", {});  // no x field
  EXPECT_EQ(instance.Process(m, 0).outcome, ProcessOutcome::kDropAbort);
}

// --- State snapshot/migration at the instance level ---------------------------------

TEST(InstanceState, SnapshotRestoreRoundTrip) {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::AclSql()));
  auto program = LowerProgram(*parsed);
  ElementInstance a(program->elements[0], 1);
  (void)a.FindTable("ac_tab")->Insert({Value("alice"), Value("W")});
  Bytes snapshot = a.SnapshotState();

  ElementInstance b(program->elements[0], 2);
  ASSERT_TRUE(b.RestoreState(snapshot).ok());
  EXPECT_EQ(b.StateContentHash(), a.StateContentHash());
  Message m = Message::MakeRequest(1, "M", {{"username", Value("alice")},
                                            {"payload", Value(Bytes{})}});
  EXPECT_EQ(b.Process(m, 0).outcome, ProcessOutcome::kPass);
}

TEST(InstanceState, SplitMergePreservesHash) {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::AclSql()));
  auto program = LowerProgram(*parsed);
  ElementInstance source(program->elements[0], 1);
  for (int i = 0; i < 64; ++i) {
    (void)source.FindTable("ac_tab")->Insert(
        {Value("u" + std::to_string(i)), Value("W")});
  }
  auto shards = source.SplitState(3);
  ASSERT_TRUE(shards.ok());
  ElementInstance merged(program->elements[0], 2);
  for (const Bytes& shard : shards.value()) {
    ASSERT_TRUE(merged.MergeState(shard).ok());
  }
  EXPECT_EQ(merged.StateContentHash(), source.StateContentHash());
}

TEST(InstanceState, RestoreRejectsWrongTableCount) {
  auto acl_parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                      std::string(elements::AclSql()));
  auto acl_program = LowerProgram(*acl_parsed);
  auto fault_parsed = dsl::ParseProgram(std::string(elements::FaultSql()));
  auto fault_program = LowerProgram(*fault_parsed);
  ElementInstance acl(acl_program->elements[0], 1);
  ElementInstance fault(fault_program->elements[0], 1);
  EXPECT_FALSE(fault.RestoreState(acl.SnapshotState()).ok());
}

// --- Commutativity / parallelism ------------------------------------------------------

compiler::ProgramIr LowerLibrary() {
  auto parsed = dsl::ParseProgram(elements::FullLibrarySource());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(Analysis, CompressCommutesWithAcl) {
  // Compress writes payload; ACL reads username and may drop but writes no
  // state — disjoint fields, so reordering is safe (Fig. 2 config 3 insight).
  auto program = LowerLibrary();
  auto compress = program.FindElement("Compress");
  auto acl = program.FindElement("Acl");
  EXPECT_TRUE(
      CheckCommutes(compress->effects, acl->effects).Commutes());
}

TEST(Analysis, LoggingDoesNotCommuteWithAcl) {
  // ACL drops; Logging writes the log table: moving the logger after the
  // ACL would hide denied requests from the log.
  auto program = LowerLibrary();
  auto logging = program.FindElement("Logging");
  auto acl = program.FindElement("Acl");
  ConflictReport r = CheckCommutes(logging->effects, acl->effects);
  EXPECT_FALSE(r.Commutes());
  EXPECT_EQ(r.kind, ConflictKind::kDropVsStateWrite);
}

TEST(Analysis, CompressDoesNotCommuteWithEncrypt) {
  // Both rewrite payload: write-write conflict (order matters: compressing
  // ciphertext is useless).
  auto program = LowerLibrary();
  auto compress = program.FindElement("Compress");
  auto encrypt = program.FindElement("Encrypt");
  ConflictReport r = CheckCommutes(compress->effects, encrypt->effects);
  EXPECT_FALSE(r.Commutes());  // read-write or write-write on payload
  EXPECT_NE(r.kind, ConflictKind::kNone);
}

TEST(Analysis, TwoDropOnlyFiltersCommute) {
  auto acl_like = LowerOne(
      "ELEMENT A { INPUT (x INT); SELECT * FROM input WHERE x > 0; }");
  auto other = LowerOne(
      "ELEMENT B { INPUT (y INT); SELECT * FROM input WHERE y > 0; }");
  EXPECT_TRUE(CheckCommutes(acl_like->effects, other->effects).Commutes());
  // But they may NOT run in parallel (both droppers).
  EXPECT_FALSE(
      CheckParallelizable(acl_like->effects, other->effects).Commutes());
}

TEST(Analysis, SharedStateTableConflicts) {
  auto a = LowerOne(R"(
    STATE TABLE shared (k INT PRIMARY KEY, v INT);
    ELEMENT A { INPUT (x INT); INSERT INTO shared VALUES (x, 1); SELECT * FROM input; }
  )");
  auto b = LowerOne(R"(
    STATE TABLE shared (k INT PRIMARY KEY, v INT);
    ELEMENT B { INPUT (x INT); UPDATE shared SET v = v + 1 WHERE k = x; SELECT * FROM input; }
  )");
  ConflictReport r = CheckCommutes(a->effects, b->effects);
  EXPECT_EQ(r.kind, ConflictKind::kStateConflict);
}

TEST(Analysis, ParallelGroupsForIndependentModifiers) {
  // Two elements writing disjoint fields, no drops: one parallel group.
  auto a = LowerOne(
      "ELEMENT A { INPUT (x INT); SELECT *, x + 1 AS x2 FROM input; }");
  auto b = LowerOne(
      "ELEMENT B { INPUT (y INT); SELECT *, y + 1 AS y2 FROM input; }");
  std::vector<const ElementIr*> chain = {a.get(), b.get()};
  auto groups = PartitionIntoParallelGroups(chain);
  EXPECT_EQ(groups, (std::vector<int>{0, 0}));
}

TEST(Analysis, DropEarlyMovesCheapFilterForward) {
  auto program = LowerLibrary();
  auto compress = program.FindElement("Compress");
  auto acl = program.FindElement("Acl");
  // Chain: Compress (expensive, payload), then Acl (cheap, droppy).
  std::vector<const ElementIr*> chain = {compress.get(), acl.get()};
  auto order = ComputeDropEarlyOrder(chain);
  EXPECT_EQ(order, (std::vector<size_t>{1, 0}));  // Acl hoisted first
}

TEST(Analysis, DropEarlyRespectsConflicts) {
  auto program = LowerLibrary();
  auto logging = program.FindElement("Logging");
  auto acl = program.FindElement("Acl");
  std::vector<const ElementIr*> chain = {logging.get(), acl.get()};
  auto order = ComputeDropEarlyOrder(chain);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));  // unchanged
}

TEST(OpCounts, MatchHandCodedTwinAssumptions) {
  // elements/handcoded.cc hard-codes the generated twins' op counts; keep
  // them honest.
  auto program = LowerLibrary();
  EXPECT_EQ(program.FindElement("Logging")->OpCount(), 7);
  EXPECT_EQ(program.FindElement("Acl")->OpCount(), 9);
  EXPECT_EQ(program.FindElement("Fault")->OpCount(), 6);
  EXPECT_EQ(program.FindElement("HashLb")->OpCount(), 10);
  EXPECT_EQ(program.FindElement("Compress")->OpCount(), 5);
}

}  // namespace
}  // namespace adn::ir
