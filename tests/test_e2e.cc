// Cross-module integration tests: the full library chain end to end,
// deterministic replay, header minimization on the live path, Figure 2
// configurations through the public API, and DSL robustness sweeps.
#include <gtest/gtest.h>

#include "core/network.h"
#include "dsl/parser.h"
#include "elements/library.h"

namespace adn {
namespace {

std::vector<std::pair<std::string, std::vector<rpc::Row>>> FullSeeds() {
  std::vector<std::pair<std::string, std::vector<rpc::Row>>> seeds;
  std::vector<rpc::Row> acl;
  std::vector<rpc::Row> quota;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    acl.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
    quota.push_back({rpc::Value(std::string(user)), rpc::Value(1'000'000)});
  }
  seeds.emplace_back("ac_tab", std::move(acl));
  seeds.emplace_back("quota", std::move(quota));
  seeds.emplace_back(
      "telemetry",
      std::vector<rpc::Row>{{rpc::Value("Echo.Call"), rpc::Value(0)}});
  return seeds;
}

TEST(E2E, FullLibraryChainRunsEndToEnd) {
  core::NetworkOptions options;
  options.state_seeds = FullSeeds();
  auto network =
      core::Network::Create(elements::FullLibrarySource(), options);
  ASSERT_TRUE(network.ok()) << network.status().ToString();

  core::WorkloadOptions workload;
  workload.concurrency = 32;
  workload.measured_requests = 3'000;
  workload.warmup_requests = 300;
  workload.make_request = core::MakeDefaultRequestFactory(512);
  auto result = (*network)->RunWorkload("everything", workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Fault injection (5%) is the only expected drop source.
  double drop_rate =
      static_cast<double>(result->stats.dropped) /
      static_cast<double>(result->stats.completed + result->stats.dropped);
  EXPECT_NEAR(drop_rate, 0.05, 0.02);
  EXPECT_GT(result->stats.throughput_krps, 1.0);
}

TEST(E2E, RunsAreDeterministic) {
  auto run_once = [] {
    core::NetworkOptions options;
    options.seed = 77;
    options.state_seeds = FullSeeds();
    auto network =
        core::Network::Create(elements::Fig5ProgramSource(), options);
    EXPECT_TRUE(network.ok());
    core::WorkloadOptions workload;
    workload.concurrency = 16;
    workload.measured_requests = 2'000;
    workload.warmup_requests = 200;
    workload.make_request = core::MakeDefaultRequestFactory();
    auto result = (*network)->RunWorkload("fig5", workload);
    EXPECT_TRUE(result.ok());
    return std::make_tuple(result->stats.completed, result->stats.dropped,
                           result->stats.mean_latency_us,
                           result->stats.throughput_krps);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(E2E, HeaderMinimizationHoldsOnTheLivePath) {
  // A chain whose server side only needs the payload: the compiler must
  // strip username/object_id from the inter-machine wire, and the run must
  // still succeed (nothing downstream needed them). Compare round-trip wire
  // bytes against the same deployment without the app_reads hint.
  const std::string source = R"(
    STATE TABLE ac_tab (username TEXT PRIMARY KEY, permission TEXT);
    ELEMENT Acl ON REQUEST {
      INPUT (username TEXT, payload BYTES);
      ON DROP ABORT 'permission denied';
      SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
        WHERE ac_tab.permission = 'W';
    }
    CHAIN lean FOR CALLS a -> b { Acl }
  )";
  auto run = [&](bool minimized) {
    core::NetworkOptions options;
    options.state_seeds = FullSeeds();
    rpc::Schema schema;
    (void)schema.AddColumn({"username", rpc::ValueType::kText, false});
    (void)schema.AddColumn({"object_id", rpc::ValueType::kInt, false});
    (void)schema.AddColumn({"payload", rpc::ValueType::kBytes, false});
    options.compile.request_schema = schema;
    if (minimized) {
      options.compile.app_reads = {"payload"};  // server reads payload only
    }
    auto network = core::Network::Create(source, options);
    EXPECT_TRUE(network.ok()) << network.status().ToString();
    if (minimized) {
      const auto* chain = (*network)->Chain("lean");
      const auto& last_spec = chain->headers.link_specs.back();
      EXPECT_EQ(last_spec.fields.size(), 1u);
      EXPECT_EQ(last_spec.fields[0].name, "payload");
    }
    core::WorkloadOptions workload;
    workload.concurrency = 8;
    workload.measured_requests = 1'000;
    workload.warmup_requests = 100;
    workload.make_request = core::MakeDefaultRequestFactory();
    auto result = (*network)->RunWorkload("lean", workload);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->stats.completed, 1'100u);
    return result->wire_bytes_per_request;
  };
  double lean_bytes = run(true);
  double full_bytes = run(false);
  EXPECT_LT(lean_bytes, full_bytes - 10.0)
      << "dead fields were not stripped from the wire";
}

TEST(E2E, SilentDropChainAccountsCorrectly) {
  const std::string source = R"(
    ELEMENT Sampler ON REQUEST {
      INPUT (payload BYTES);
      ON DROP SILENT;
      SELECT * FROM input WHERE random() < 0.5;
    }
    CHAIN sampled FOR CALLS a -> b { Sampler }
  )";
  auto network = core::Network::Create(source, {});
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  core::WorkloadOptions workload;
  workload.concurrency = 16;
  workload.measured_requests = 4'000;
  workload.warmup_requests = 400;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto result = (*network)->RunWorkload("sampled", workload);
  ASSERT_TRUE(result.ok());
  double drop_rate =
      static_cast<double>(result->stats.dropped) /
      static_cast<double>(result->stats.completed + result->stats.dropped);
  EXPECT_NEAR(drop_rate, 0.5, 0.05);
}

TEST(E2E, ResponseDirectionElementRuns) {
  // An element ON RESPONSE stamping a field: must execute on the way back
  // without disturbing requests.
  const std::string source = R"(
    STATE TABLE seen (rpc INT, bytes INT);
    ELEMENT RespAudit ON RESPONSE {
      INPUT (payload BYTES);
      INSERT INTO seen VALUES (rpc_id(), len(payload));
    }
    CHAIN audited FOR CALLS a -> b { RespAudit }
  )";
  auto network = core::Network::Create(source, {});
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  core::WorkloadOptions workload;
  workload.concurrency = 4;
  workload.measured_requests = 500;
  workload.warmup_requests = 50;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto result = (*network)->RunWorkload("audited", workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.completed, 550u);
  EXPECT_EQ(result->stats.dropped, 0u);
}

// DSL robustness: truncations of a valid program must parse-fail cleanly,
// never crash or hang.
TEST(E2E, TruncatedProgramsFailCleanly) {
  std::string source = elements::Fig5ProgramSource();
  for (size_t cut = 0; cut < source.size(); cut += 17) {
    auto result = dsl::ParseProgram(source.substr(0, cut));
    // Either parses (if the cut lands after complete declarations) or
    // reports an error — both are fine; crashing is not.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().ToString().empty());
    }
  }
}

// Mutation robustness: single-character corruption must never crash the
// front end or the compiler.
TEST(E2E, MutatedProgramsNeverCrashTheCompiler) {
  std::string source = elements::Fig5ProgramSource();
  compiler::Compiler c;
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = source;
    size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.NextBelow(95));
    auto compiled = c.CompileSource(mutated, {});
    (void)compiled;  // outcome irrelevant; absence of crash is the assertion
  }
}

TEST(E2E, EngineWidthDoesNotChangeSemantics) {
  // Scale-out must change throughput, never results: same drop counts for
  // the same seed across widths.
  auto run_width = [](int width) {
    core::NetworkOptions options;
    options.seed = 5;
    options.state_seeds = FullSeeds();
    auto network =
        core::Network::Create(elements::Fig5ProgramSource(), options);
    EXPECT_TRUE(network.ok());
    core::WorkloadOptions workload;
    workload.concurrency = 32;
    workload.measured_requests = 2'000;
    workload.warmup_requests = 0;
    workload.client_engine_width = width;
    workload.make_request = core::MakeDefaultRequestFactory();
    auto result = (*network)->RunWorkload("fig5", workload);
    EXPECT_TRUE(result.ok());
    return result->stats.dropped;
  };
  EXPECT_EQ(run_width(1), run_width(4));
}

}  // namespace
}  // namespace adn
