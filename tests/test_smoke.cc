// End-to-end smoke: compile the Fig. 5 program, deploy it through the
// controller, run a workload, and sanity-check the statistics.
#include <gtest/gtest.h>

#include "core/network.h"
#include "elements/library.h"

namespace adn {
namespace {

TEST(Smoke, Fig5EndToEnd) {
  core::NetworkOptions options;
  options.policy = controller::PlacementPolicy::kNativeOnly;
  options.state_seeds = {
      {"ac_tab",
       {
           {rpc::Value("alice"), rpc::Value("W")},
           {rpc::Value("bob"), rpc::Value("W")},
           {rpc::Value("carol"), rpc::Value("W")},
           {rpc::Value("dave"), rpc::Value("R")},  // dave gets denied
       }},
  };
  auto network =
      core::Network::Create(elements::Fig5ProgramSource(), options);
  ASSERT_TRUE(network.ok()) << network.status().ToString();

  const auto* chain = (*network)->Chain("fig5");
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->elements.size(), 3u);

  const auto* placement = (*network)->PlacementFor("fig5");
  ASSERT_NE(placement, nullptr);

  core::WorkloadOptions workload;
  workload.concurrency = 32;
  workload.measured_requests = 2'000;
  workload.warmup_requests = 200;
  workload.make_request = core::MakeDefaultRequestFactory();
  auto result = (*network)->RunWorkload("fig5", workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // ~25% of users are dave (denied) plus 5% fault injection.
  EXPECT_GT(result->stats.completed, 1000u);
  EXPECT_GT(result->stats.dropped, 100u);
  EXPECT_GT(result->stats.throughput_krps, 1.0);
  EXPECT_GT(result->stats.mean_latency_us, 10.0);
  EXPECT_LT(result->stats.mean_latency_us, 100'000.0);
}

}  // namespace
}  // namespace adn
