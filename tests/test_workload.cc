// Workload generator tests: distribution shape, determinism, and use as an
// end-to-end request factory.
#include <gtest/gtest.h>

#include <map>

#include "core/network.h"
#include "core/workload.h"
#include "elements/library.h"

namespace adn::core {
namespace {

TEST(Zipf, SkewConcentratesMass) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(1);
  std::map<size_t, int> counts;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Sample(rng)]++;
  // Rank 0 dominates; top-10 ranks carry most of the mass.
  EXPECT_GT(counts[0], counts[9] * 3);
  int top10 = 0;
  for (size_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(top10, kSamples / 2);
}

TEST(Zipf, ZeroSkewIsRoughlyUniform) {
  ZipfSampler uniform(10, 0.0);
  Rng rng(2);
  std::map<size_t, int> counts;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) counts[uniform.Sample(rng)]++;
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(counts[r], kSamples / 10, kSamples / 50) << "rank " << r;
  }
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler zipf(7, 2.0);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 7u);
  }
}

TEST(Zipf, EmptyPopulationYieldsRankZero) {
  // n == 0 builds an empty CDF; Sample must not binary-search it.
  ZipfSampler empty(0, 1.1);
  Rng rng(11);
  EXPECT_EQ(empty.size(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(empty.Sample(rng), 0u);
}

TEST(Zipf, DrawAtOrAboveCdfBackStaysInRange) {
  // FP rounding can leave cdf_.back() < 1.0; a draw landing in that sliver
  // makes lower_bound return end(). The sampler must clamp to the last rank
  // rather than return n. Exercised indirectly: many draws over a tiny
  // population with heavy skew (maximizes accumulated rounding error) must
  // never leave [0, n).
  ZipfSampler zipf(3, 3.0);
  Rng rng(12);
  for (int i = 0; i < 200'000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 3u);
  }
}

TEST(PayloadSizes, MedianAndClamping) {
  PayloadSizeSampler sizes(256, 1.0, 16, 4096);
  Rng rng(4);
  std::vector<size_t> samples;
  for (int i = 0; i < 20'000; ++i) samples.push_back(sizes.Sample(rng));
  std::sort(samples.begin(), samples.end());
  size_t median = samples[samples.size() / 2];
  EXPECT_NEAR(static_cast<double>(median), 256.0, 40.0);
  EXPECT_GE(samples.front(), 16u);
  EXPECT_LE(samples.back(), 4096u);
  // Heavy tail: some samples hit the clamp.
  EXPECT_EQ(samples.back(), 4096u);
}

TEST(TraceWorkload, ProducesWellFormedRequests) {
  TraceWorkloadOptions options;
  options.method_mix = {{"Store.Get", 3}, {"Store.Put", 1}};
  auto factory_or = MakeTraceWorkload(options);
  ASSERT_TRUE(factory_or.ok()) << factory_or.status().ToString();
  auto factory = std::move(factory_or).value();
  Rng rng(5);
  int gets = 0, puts = 0;
  for (uint64_t id = 0; id < 4'000; ++id) {
    rpc::Message m = factory(id, rng);
    EXPECT_TRUE(m.HasField("username"));
    EXPECT_TRUE(m.HasField("object_id"));
    EXPECT_TRUE(m.HasField("payload"));
    if (m.method() == "Store.Get") ++gets;
    if (m.method() == "Store.Put") ++puts;
  }
  EXPECT_EQ(gets + puts, 4'000);
  EXPECT_NEAR(static_cast<double>(gets) / 4'000, 0.75, 0.05);
}

TEST(TraceWorkload, RejectsNonPositiveWeights) {
  TraceWorkloadOptions zero;
  zero.method_mix = {{"Store.Get", 1}, {"Store.Scan", 0}};
  auto zero_or = MakeTraceWorkload(zero);
  ASSERT_FALSE(zero_or.ok());
  EXPECT_EQ(zero_or.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(zero_or.error().message().find("Store.Scan"), std::string::npos);

  TraceWorkloadOptions negative;
  negative.method_mix = {{"Store.Put", -4}};
  EXPECT_FALSE(MakeTraceWorkload(negative).ok());
}

TEST(TraceWorkload, LargeWeightsSampleWithoutExpansion) {
  // Pre-fix, this mix would have materialized a 2-billion-entry pick table.
  TraceWorkloadOptions options;
  options.method_mix = {{"Store.Get", 1'500'000'000}, {"Store.Put", 500'000'000}};
  auto factory_or = MakeTraceWorkload(options);
  ASSERT_TRUE(factory_or.ok()) << factory_or.status().ToString();
  auto factory = std::move(factory_or).value();
  Rng rng(7);
  int gets = 0;
  constexpr int kSamples = 2'000;
  for (uint64_t id = 0; id < kSamples; ++id) {
    if (factory(id, rng).method() == "Store.Get") ++gets;
  }
  EXPECT_NEAR(static_cast<double>(gets) / kSamples, 0.75, 0.05);
}

TEST(TraceWorkload, DeterministicUnderSeed) {
  auto factory_or = MakeTraceWorkload({});
  ASSERT_TRUE(factory_or.ok()) << factory_or.status().ToString();
  auto factory = std::move(factory_or).value();
  Rng a(9), b(9);
  for (uint64_t id = 0; id < 200; ++id) {
    rpc::Message ma = factory(id, a);
    rpc::Message mb = factory(id, b);
    EXPECT_EQ(ma.DebugString(), mb.DebugString());
  }
}

TEST(TraceWorkload, DrivesTheFig2ChainEndToEnd) {
  core::NetworkOptions options;
  std::vector<rpc::Row> acl;
  for (int i = 0; i < 1000; ++i) {
    acl.push_back({rpc::Value("user" + std::to_string(i)), rpc::Value("W")});
  }
  options.state_seeds = {{"ac_tab", std::move(acl)}};
  auto network = core::Network::Create(elements::Fig2ProgramSource(), options);
  ASSERT_TRUE(network.ok()) << network.status().ToString();

  TraceWorkloadOptions trace;
  trace.payload_max_bytes = 8192;  // keep the test fast
  core::WorkloadOptions workload;
  workload.concurrency = 16;
  workload.measured_requests = 1'500;
  workload.warmup_requests = 150;
  auto trace_factory = MakeTraceWorkload(trace);
  ASSERT_TRUE(trace_factory.ok()) << trace_factory.status().ToString();
  workload.make_request = std::move(trace_factory).value();
  auto result = (*network)->RunWorkload("fig2", workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.completed, 1'650u);  // all users have W
  EXPECT_GT(result->stats.throughput_krps, 1.0);
}

}  // namespace
}  // namespace adn::core
