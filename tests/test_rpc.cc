// Unit tests: Value semantics, Message field operations, Schema, the ADN
// minimal wire codec, and the method registry.
#include <gtest/gtest.h>

#include "rpc/message.h"
#include "rpc/schema.h"
#include "rpc/value.h"
#include "rpc/wire.h"

namespace adn::rpc {
namespace {

// --- Value ------------------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kFloat);
  EXPECT_EQ(Value("hi").type(), ValueType::kText);
  EXPECT_EQ(Value(Bytes{1, 2}).type(), ValueType::kBytes);
  EXPECT_EQ(Value(7).AsInt(), 7);
  EXPECT_EQ(Value("hi").AsText(), "hi");
}

TEST(Value, NullNeverEqualsAnything) {
  EXPECT_FALSE(Value().EqualsValue(Value()));
  EXPECT_FALSE(Value().EqualsValue(Value(0)));
  EXPECT_FALSE(Value(0).EqualsValue(Value()));
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(3).EqualsValue(Value(3.0)));
  EXPECT_FALSE(Value(3).EqualsValue(Value(3.5)));
  EXPECT_TRUE(Value(3).EqualsValue(Value(int64_t{3})));
}

TEST(Value, TextAndBytesEquality) {
  EXPECT_TRUE(Value("a").EqualsValue(Value("a")));
  EXPECT_FALSE(Value("a").EqualsValue(Value("b")));
  EXPECT_FALSE(Value("3").EqualsValue(Value(3)));  // no coercion
  EXPECT_TRUE(Value(Bytes{1}).EqualsValue(Value(Bytes{1})));
}

TEST(Value, CompareOrdering) {
  EXPECT_LT(Value(1).CompareTo(Value(2)), 0);
  EXPECT_GT(Value(2.5).CompareTo(Value(2)), 0);
  EXPECT_EQ(Value("b").CompareTo(Value("b")), 0);
  EXPECT_LT(Value("a").CompareTo(Value("b")), 0);
  EXPECT_LT(Value().CompareTo(Value(0)), 0);  // NULL sorts first
  EXPECT_LT(Value(Bytes{1, 2}).CompareTo(Value(Bytes{1, 3})), 0);
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(HashValue(Value(42)), HashValue(Value(42)));
  EXPECT_EQ(HashValue(Value(42)), HashValue(Value(42.0)));  // integral double
  EXPECT_EQ(HashValue(Value("x")), HashValue(Value("x")));
  EXPECT_NE(HashValue(Value("x")), HashValue(Value("y")));
}

// --- Message ---------------------------------------------------------------

TEST(Message, FieldSetGetRemove) {
  Message m;
  EXPECT_FALSE(m.HasField("a"));
  EXPECT_TRUE(m.GetFieldOrNull("a").is_null());
  m.SetField("a", Value(1));
  m.SetField("b", Value("x"));
  EXPECT_EQ(m.FieldCount(), 2u);
  EXPECT_EQ(m.GetFieldOrNull("a").AsInt(), 1);
  m.SetField("a", Value(2));  // overwrite, not duplicate
  EXPECT_EQ(m.FieldCount(), 2u);
  EXPECT_EQ(m.GetFieldOrNull("a").AsInt(), 2);
  EXPECT_TRUE(m.RemoveField("a"));
  EXPECT_FALSE(m.RemoveField("a"));
  EXPECT_EQ(m.FieldCount(), 1u);
}

TEST(Message, MakeResponseSwapsEndpoints) {
  Message req = Message::MakeRequest(9, "Svc.Do", {{"x", Value(1)}});
  req.set_source(10);
  req.set_destination(20);
  Message resp = Message::MakeResponse(req, {{"y", Value(2)}});
  EXPECT_EQ(resp.kind(), MessageKind::kResponse);
  EXPECT_EQ(resp.id(), 9u);
  EXPECT_EQ(resp.method(), "Svc.Do");
  EXPECT_EQ(resp.source(), 20u);
  EXPECT_EQ(resp.destination(), 10u);
}

TEST(Message, MakeNetworkErrorCarriesDetail) {
  Message req = Message::MakeRequest(3, "M", {});
  Message err = Message::MakeNetworkError(req, "denied");
  EXPECT_EQ(err.kind(), MessageKind::kError);
  EXPECT_EQ(err.error_detail(), "denied");
  EXPECT_EQ(err.id(), 3u);
}

// --- Schema ---------------------------------------------------------------

TEST(Schema, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddColumn({"a", ValueType::kInt, true}).ok());
  ASSERT_TRUE(s.AddColumn({"b", ValueType::kText, false}).ok());
  EXPECT_FALSE(s.AddColumn({"a", ValueType::kInt, false}).ok());
  EXPECT_EQ(s.IndexOf("b").value(), 1u);
  EXPECT_EQ(s.FindColumn("a")->type, ValueType::kInt);
  EXPECT_EQ(s.FindColumn("zz"), nullptr);
  EXPECT_EQ(s.PrimaryKeyIndexes(), std::vector<size_t>{0});
}

TEST(ParseValueTypeNames, AcceptsAliases) {
  EXPECT_EQ(ParseValueType("int").value(), ValueType::kInt);
  EXPECT_EQ(ParseValueType("BIGINT").value(), ValueType::kInt);
  EXPECT_EQ(ParseValueType("varchar").value(), ValueType::kText);
  EXPECT_EQ(ParseValueType("BLOB").value(), ValueType::kBytes);
  EXPECT_EQ(ParseValueType("double").value(), ValueType::kFloat);
  EXPECT_EQ(ParseValueType("boolean").value(), ValueType::kBool);
  EXPECT_FALSE(ParseValueType("tensor").ok());
}

// --- MethodRegistry ----------------------------------------------------------

TEST(MethodRegistry, InternIsIdempotent) {
  MethodRegistry reg;
  uint32_t a = reg.Intern("Svc.A");
  uint32_t b = reg.Intern("Svc.B");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.Intern("Svc.A"), a);
  EXPECT_EQ(reg.Lookup("Svc.B").value(), b);
  EXPECT_EQ(reg.Reverse(a).value(), "Svc.A");
  EXPECT_FALSE(reg.Lookup("Svc.C").ok());
  EXPECT_FALSE(reg.Reverse(99).ok());
}

// --- AdnWireCodec -----------------------------------------------------------

class WireFixture : public ::testing::Test {
 protected:
  WireFixture() {
    spec_.fields = {
        {"username", ValueType::kText, false},
        {"object_id", ValueType::kInt, false},
        {"payload", ValueType::kBytes, false},
    };
    methods_.Intern("Store.Get");
  }
  HeaderSpec spec_;
  MethodRegistry methods_;
};

TEST_F(WireFixture, RoundTrip) {
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(
      77, "Store.Get",
      {{"username", Value("alice")},
       {"object_id", Value(12345)},
       {"payload", Value(Bytes{9, 8, 7})}});
  m.set_source(1);
  m.set_destination(2);

  Bytes wire;
  ASSERT_TRUE(codec.Encode(m, wire).ok());
  auto decoded = codec.Decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->id(), 77u);
  EXPECT_EQ(decoded->method(), "Store.Get");
  EXPECT_EQ(decoded->source(), 1u);
  EXPECT_EQ(decoded->destination(), 2u);
  EXPECT_EQ(decoded->GetFieldOrNull("username").AsText(), "alice");
  EXPECT_EQ(decoded->GetFieldOrNull("object_id").AsInt(), 12345);
  EXPECT_EQ(decoded->GetFieldOrNull("payload").AsBytes(), (Bytes{9, 8, 7}));
}

TEST_F(WireFixture, FieldsNotInSpecAreDropped) {
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(1, "Store.Get",
                                   {{"username", Value("bob")},
                                    {"debug_note", Value("secret")}});
  Bytes wire;
  ASSERT_TRUE(codec.Encode(m, wire).ok());
  auto decoded = codec.Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->HasField("debug_note"));  // dead-field elimination
}

TEST_F(WireFixture, AbsentFieldsDecodeAsAbsent) {
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(1, "Store.Get", {{"object_id", Value(5)}});
  Bytes wire;
  ASSERT_TRUE(codec.Encode(m, wire).ok());
  auto decoded = codec.Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->HasField("username"));
  EXPECT_EQ(decoded->GetFieldOrNull("object_id").AsInt(), 5);
}

TEST_F(WireFixture, TypeMismatchRejectedAtEncode) {
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(1, "Store.Get",
                                   {{"object_id", Value("not-an-int")}});
  Bytes wire;
  EXPECT_FALSE(codec.Encode(m, wire).ok());
}

TEST_F(WireFixture, UnknownMethodRejectedAtEncode) {
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(1, "Other.Method", {});
  Bytes wire;
  EXPECT_FALSE(codec.Encode(m, wire).ok());
}

TEST_F(WireFixture, ErrorMessagesCarryDetail) {
  AdnWireCodec codec(spec_, &methods_);
  Message req = Message::MakeRequest(4, "Store.Get", {});
  Message err = Message::MakeNetworkError(req, "permission denied");
  Bytes wire;
  ASSERT_TRUE(codec.Encode(err, wire).ok());
  auto decoded = codec.Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind(), MessageKind::kError);
  EXPECT_EQ(decoded->error_detail(), "permission denied");
}

TEST_F(WireFixture, TruncatedWireRejected) {
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(1, "Store.Get",
                                   {{"username", Value("carol")}});
  Bytes wire;
  ASSERT_TRUE(codec.Encode(m, wire).ok());
  for (size_t cut : {size_t{0}, size_t{5}, wire.size() - 1}) {
    Bytes partial(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(codec.Decode(partial).ok()) << "cut=" << cut;
  }
}

TEST_F(WireFixture, MinimalHeaderIsSmall) {
  // Base header is 21 bytes; a message with one short text field stays tiny
  // compared with the layered-stack encoding of the same RPC.
  AdnWireCodec codec(spec_, &methods_);
  Message m = Message::MakeRequest(1, "Store.Get",
                                   {{"username", Value("dan")}});
  Bytes wire;
  ASSERT_TRUE(codec.Encode(m, wire).ok());
  EXPECT_LT(wire.size(), 40u);
}

TEST(HeaderSpecTest, DebugStringListsFields) {
  HeaderSpec spec;
  spec.fields = {{"a", ValueType::kInt, false}};
  EXPECT_EQ(spec.DebugString(), "HeaderSpec[a:INT]");
}

}  // namespace
}  // namespace adn::rpc
