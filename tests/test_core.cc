// Public-API tests: Network lifecycle, placement policies end to end,
// replica churn, and client-side retry/timeout policies.
#include <gtest/gtest.h>

#include "core/client_policy.h"
#include "core/network.h"
#include "elements/library.h"

namespace adn::core {
namespace {

std::vector<std::pair<std::string, std::vector<rpc::Row>>> OpenAclSeeds() {
  std::vector<rpc::Row> rows;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    rows.push_back({rpc::Value(std::string(user)), rpc::Value("W")});
  }
  return {{"ac_tab", std::move(rows)}};
}

TEST(Network, CreateRejectsBadSource) {
  auto network = Network::Create("ELEMENT {", {});
  EXPECT_FALSE(network.ok());
}

TEST(Network, CreateRejectsInfeasibleDeployment) {
  // RECEIVER before SENDER cannot be placed monotonically along the path.
  const std::string source = R"(
    STATE TABLE t1 (k INT PRIMARY KEY);
    STATE TABLE t2 (k INT PRIMARY KEY);
    ELEMENT A ON REQUEST { INPUT (x INT); INSERT INTO t1 VALUES (x); }
    ELEMENT B ON REQUEST { INPUT (x INT); INSERT INTO t2 VALUES (x); }
    CHAIN c FOR CALLS a -> b { A AT RECEIVER, B AT SENDER }
  )";
  auto network = Network::Create(source, {});
  EXPECT_FALSE(network.ok());
}

TEST(Network, ExposesCompiledArtifacts) {
  NetworkOptions options;
  auto network = Network::Create(elements::Fig5ProgramSource(), options);
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  const auto* chain = (*network)->Chain("fig5");
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->elements.size(), 3u);
  EXPECT_FALSE(chain->headers.link_specs.empty());
  const auto* placement = (*network)->PlacementFor("fig5");
  ASSERT_NE(placement, nullptr);
  EXPECT_EQ(placement->sites.size(), 3u);
  EXPECT_EQ((*network)->PlacementFor("nope"), nullptr);
}

TEST(Network, ReplicaChurnRefreshesEndpoints) {
  NetworkOptions options;
  options.callee_replicas = 1;
  auto network = Network::Create(elements::Fig2ProgramSource(), options);
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  auto& controller = (*network)->controller();
  size_t before = 0;
  {
    auto rows = controller.EndpointRows("service_b");
    std::set<int64_t> endpoints;
    for (const auto& row : rows) endpoints.insert(row[1].AsInt());
    before = endpoints.size();
  }
  EXPECT_EQ(before, 1u);
  auto added = (*network)->AddCalleeReplica("fig2");
  ASSERT_TRUE(added.ok());
  {
    auto rows = controller.EndpointRows("service_b");
    std::set<int64_t> endpoints;
    for (const auto& row : rows) endpoints.insert(row[1].AsInt());
    EXPECT_EQ(endpoints.size(), 2u);
  }
  ASSERT_TRUE((*network)->RemoveCalleeReplica("fig2", added.value()).ok());
  {
    auto rows = controller.EndpointRows("service_b");
    std::set<int64_t> endpoints;
    for (const auto& row : rows) endpoints.insert(row[1].AsInt());
    EXPECT_EQ(endpoints.size(), 1u);
  }
}

class PolicyMatrix
    : public ::testing::TestWithParam<controller::PlacementPolicy> {};

TEST_P(PolicyMatrix, Fig2RunsUnderEveryPolicy) {
  NetworkOptions options;
  options.policy = GetParam();
  options.environment.sender_kernel_offload = true;
  options.environment.receiver_kernel_offload = true;
  options.environment.receiver_smartnic = true;
  options.environment.p4_switch_on_path = true;
  options.state_seeds = OpenAclSeeds();
  auto network = Network::Create(elements::Fig2ProgramSource(), options);
  ASSERT_TRUE(network.ok()) << network.status().ToString();

  WorkloadOptions workload;
  workload.concurrency = 16;
  workload.measured_requests = 1'500;
  workload.warmup_requests = 100;
  workload.make_request = MakeDefaultRequestFactory(512);
  auto result = (*network)->RunWorkload("fig2", workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.completed, 1'400u);
  EXPECT_GT(result->stats.throughput_krps, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyMatrix,
    ::testing::Values(controller::PlacementPolicy::kNativeOnly,
                      controller::PlacementPolicy::kInApp,
                      controller::PlacementPolicy::kMinHostCpu,
                      controller::PlacementPolicy::kMinLatency),
    [](const auto& info) {
      std::string name(controller::PlacementPolicyName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Network, OffloadPolicyLowersHostCpu) {
  NetworkOptions native;
  native.policy = controller::PlacementPolicy::kNativeOnly;
  native.state_seeds = OpenAclSeeds();
  NetworkOptions offload = native;
  offload.policy = controller::PlacementPolicy::kMinHostCpu;
  offload.environment.sender_kernel_offload = true;
  offload.environment.receiver_kernel_offload = true;
  offload.environment.receiver_smartnic = true;
  offload.environment.p4_switch_on_path = true;

  WorkloadOptions workload;
  workload.concurrency = 16;
  workload.measured_requests = 1'500;
  workload.warmup_requests = 100;
  workload.make_request = MakeDefaultRequestFactory(512);

  auto native_network =
      Network::Create(elements::Fig2ProgramSource(), native);
  ASSERT_TRUE(native_network.ok());
  auto offload_network =
      Network::Create(elements::Fig2ProgramSource(), offload);
  ASSERT_TRUE(offload_network.ok());
  auto native_result = (*native_network)->RunWorkload("fig2", workload);
  auto offload_result = (*offload_network)->RunWorkload("fig2", workload);
  ASSERT_TRUE(native_result.ok());
  ASSERT_TRUE(offload_result.ok());
  EXPECT_LT(offload_result->host_cpu_per_rpc_ns,
            native_result->host_cpu_per_rpc_ns);
}

// --- Client policies -------------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_ns = 1'000'000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ns = 6'000'000;
  EXPECT_EQ(BackoffForAttempt(policy, 1), 1'000'000);
  EXPECT_EQ(BackoffForAttempt(policy, 2), 2'000'000);
  EXPECT_EQ(BackoffForAttempt(policy, 3), 4'000'000);
  EXPECT_EQ(BackoffForAttempt(policy, 4), 6'000'000);  // capped
}

TEST(RetryPolicyTest, BackoffStaysCappedAtLargeAttemptCounts) {
  // Regression: the pre-clamp implementation multiplied the double out to
  // 2^99 * 1ms before casting to int64_t — UB whose practical result was a
  // negative backoff that std::min then selected. Every attempt up to a
  // max_attempts = 100 policy must return the cap, never a negative or
  // wrapped value.
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.base_backoff_ns = 1'000'000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ns = 64'000'000;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    int64_t backoff = BackoffForAttempt(policy, attempt);
    EXPECT_GE(backoff, policy.base_backoff_ns) << "attempt " << attempt;
    EXPECT_LE(backoff, policy.max_backoff_ns) << "attempt " << attempt;
  }
  EXPECT_EQ(BackoffForAttempt(policy, 100), 64'000'000);
}

TEST(RetryPolicyTest, BudgetLimitsRetryFraction) {
  RetryPolicy policy;
  policy.budget_fraction = 0.2;
  RetryBudget budget(policy);
  for (int i = 0; i < 100; ++i) budget.OnRequest();
  int granted = 0;
  for (int i = 0; i < 100; ++i) {
    if (budget.TryConsume()) ++granted;
  }
  EXPECT_LE(granted, 20);
  EXPECT_GE(granted, 15);
  EXPECT_LE(budget.current_fraction(), 0.21);
}

TEST(RetryPolicyTest, NoBudgetWithoutTraffic) {
  RetryBudget budget(RetryPolicy{});
  EXPECT_FALSE(budget.TryConsume());
}

TEST(RetryPolicyTest, RetriabilityClassification) {
  EXPECT_TRUE(IsRetriableError("fault injected"));
  EXPECT_TRUE(IsRetriableError("rate limit exceeded"));
  EXPECT_TRUE(IsRetriableError("circuit open"));
  EXPECT_FALSE(IsRetriableError("permission denied"));
  EXPECT_FALSE(IsRetriableError("quota exceeded"));
}

}  // namespace
}  // namespace adn::core
