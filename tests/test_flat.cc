// Zero-allocation message path: flat wire format round-trips, arena
// lease/recycle semantics, the field-name interner, and the arena-backed
// Message API (slices, materialize-on-copy, lease-carrying moves).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/arena.h"
#include "rpc/flat_wire.h"
#include "rpc/intern.h"
#include "rpc/message.h"
#include "rpc/value.h"
#include "rpc/wire.h"

namespace adn::rpc {
namespace {

using common::Arena;
using common::ArenaPool;

// CompareTo treats NULL == NULL (EqualsValue keeps SQL's NULL != NULL).
void ExpectSameFields(const Message& a, const Message& b) {
  ASSERT_EQ(a.FieldCount(), b.FieldCount());
  for (size_t i = 0; i < a.FieldCount(); ++i) {
    const Field& fa = a.fields()[i];
    const Field& fb = b.fields()[i];
    EXPECT_EQ(fa.id, fb.id) << "field " << i;
    EXPECT_EQ(fa.value.type(), fb.value.type()) << "field " << fa.name();
    EXPECT_EQ(fa.value.CompareTo(fb.value), 0) << "field " << fa.name();
  }
}

void ExpectSameMessage(const Message& a, const Message& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.source(), b.source());
  EXPECT_EQ(a.destination(), b.destination());
  EXPECT_EQ(a.error_detail(), b.error_detail());
  ExpectSameFields(a, b);
}

Message SampleMessage() {
  std::vector<Field> fields = {
      {"username", Value(std::string("alice"))},
      {"object_id", Value(int64_t{42})},
      {"score", Value(2.5)},
      {"admin", Value(true)},
      {"payload", Value(Bytes{1, 2, 3, 4, 5})},
      {"note", Value()},  // NULL
  };
  Message m = Message::MakeRequest(7, "Obj.Put", std::move(fields));
  m.set_source(3);
  m.set_destination(9);
  return m;
}

TEST(FlatWire, RoundTripsAllValueTypes) {
  const Message m = SampleMessage();
  Bytes wire;
  ASSERT_TRUE(EncodeFlat(m, nullptr, wire).ok());
  EXPECT_EQ(wire.size(), FlatEncodedSize(m));

  auto decoded = DecodeFlat(wire, nullptr);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameMessage(m, *decoded);
  EXPECT_FALSE(decoded->arena_backed());
}

TEST(FlatWire, ReEncodeIsByteExact) {
  const Message m = SampleMessage();
  Bytes first;
  ASSERT_TRUE(EncodeFlat(m, nullptr, first).ok());
  auto decoded = DecodeFlat(first, nullptr);
  ASSERT_TRUE(decoded.ok());
  Bytes second;
  ASSERT_TRUE(EncodeFlat(*decoded, nullptr, second).ok());
  EXPECT_EQ(first, second);
}

TEST(FlatWire, ArenaDecodeBorrowsFromArena) {
  const Message m = SampleMessage();
  Bytes wire;
  ASSERT_TRUE(EncodeFlat(m, nullptr, wire).ok());

  Arena arena;
  auto decoded = DecodeFlat(wire, nullptr, &arena);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->arena_backed());
  ExpectSameMessage(m, *decoded);

  // TEXT/BYTES came in as slices pointing into the arena's var-section copy.
  const Value* user = decoded->FindField(InternFieldName("username"));
  ASSERT_NE(user, nullptr);
  EXPECT_TRUE(user->is_borrowed());
  EXPECT_GT(arena.bytes_used(), 0u);

  // Re-encoding the borrowed message is identical to encoding the original.
  Bytes again;
  ASSERT_TRUE(EncodeFlat(*decoded, nullptr, again).ok());
  EXPECT_EQ(wire, again);
}

TEST(FlatWire, MethodRegistryCarriesMethodNames) {
  MethodRegistry methods;
  methods.Intern("Obj.Put");
  const Message m = SampleMessage();
  Bytes wire;
  ASSERT_TRUE(EncodeFlat(m, &methods, wire).ok());
  auto decoded = DecodeFlat(wire, &methods);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method(), "Obj.Put");
}

TEST(FlatWire, ErrorDetailSurvives) {
  Message req = SampleMessage();
  Message err = Message::MakeNetworkError(req, "permission denied");
  Bytes wire;
  ASSERT_TRUE(EncodeFlat(err, nullptr, wire).ok());
  auto decoded = DecodeFlat(wire, nullptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind(), MessageKind::kError);
  EXPECT_EQ(decoded->error_detail(), "permission denied");
}

TEST(FlatWire, RejectsTruncatedFrames) {
  const Message m = SampleMessage();
  Bytes wire;
  ASSERT_TRUE(EncodeFlat(m, nullptr, wire).ok());
  for (size_t cut : {size_t{0}, size_t{5}, kFlatBaseBytes - 1,
                     kFlatBaseBytes + 3, wire.size() - 1}) {
    auto r = DecodeFlat(std::span<const uint8_t>(wire.data(), cut), nullptr);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

Value RandomValue(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0: return Value();
    case 1: return Value(static_cast<bool>(rng() & 1));
    case 2: return Value(static_cast<int64_t>(rng()));
    case 3: return Value(static_cast<double>(rng() % 1000) / 7.0);
    case 4: {
      std::string s(rng() % 40, 'x');
      for (char& c : s) c = static_cast<char>('a' + rng() % 26);
      return Value(std::move(s));
    }
    default: {
      Bytes b(rng() % 100);
      for (uint8_t& x : b) x = static_cast<uint8_t>(rng());
      return Value(std::move(b));
    }
  }
}

TEST(FlatWire, RandomizedRoundTripHeapAndArena) {
  std::mt19937_64 rng(20260808);
  Arena arena;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Field> fields;
    const size_t n = rng() % 8;
    for (size_t i = 0; i < n; ++i) {
      fields.emplace_back("f" + std::to_string(i), RandomValue(rng));
    }
    Message m = Message::MakeRequest(rng(), "Svc.M", std::move(fields));
    m.set_source(static_cast<EndpointId>(rng() % 100));
    m.set_destination(static_cast<EndpointId>(rng() % 100));

    Bytes wire;
    ASSERT_TRUE(EncodeFlat(m, nullptr, wire).ok());
    ASSERT_EQ(wire.size(), FlatEncodedSize(m));

    auto heap = DecodeFlat(wire, nullptr);
    ASSERT_TRUE(heap.ok());
    ExpectSameMessage(m, *heap);

    arena.Reset();
    auto borrowed = DecodeFlat(wire, nullptr, &arena);
    ASSERT_TRUE(borrowed.ok());
    ExpectSameMessage(m, *borrowed);
  }
}

// The flat format and the legacy positional codec must agree on content:
// decoding either encoding of the same message yields the same field values.
TEST(FlatWire, AgreesWithLegacyCodecOnRandomMessages) {
  std::mt19937_64 rng(77);
  MethodRegistry methods;
  methods.Intern("Svc.M");
  for (int iter = 0; iter < 100; ++iter) {
    // The legacy codec needs a typed HeaderSpec, so draw typed columns.
    HeaderSpec spec;
    std::vector<Field> fields;
    const size_t n = 1 + rng() % 6;
    for (size_t i = 0; i < n; ++i) {
      const std::string name = "c" + std::to_string(i);
      Value v;
      ValueType t = ValueType::kInt;
      switch (rng() % 4) {
        case 0: v = Value(static_cast<int64_t>(rng() % 1'000'000)); break;
        case 1:
          v = Value(std::string(1 + rng() % 20, 'k'));
          t = ValueType::kText;
          break;
        case 2: {
          Bytes b(rng() % 50, static_cast<uint8_t>(iter));
          v = Value(std::move(b));
          t = ValueType::kBytes;
          break;
        }
        default: v = Value(static_cast<bool>(rng() & 1)); t = ValueType::kBool;
      }
      spec.fields.push_back({name, t, false});
      fields.emplace_back(name, std::move(v));
    }
    Message m = Message::MakeRequest(iter + 1, "Svc.M", std::move(fields));

    AdnWireCodec legacy(spec, &methods);
    Bytes legacy_wire;
    ASSERT_TRUE(legacy.Encode(m, legacy_wire).ok());
    auto from_legacy = legacy.Decode(legacy_wire);
    ASSERT_TRUE(from_legacy.ok());

    Bytes flat_wire;
    ASSERT_TRUE(EncodeFlat(m, &methods, flat_wire).ok());
    auto from_flat = DecodeFlat(flat_wire, &methods);
    ASSERT_TRUE(from_flat.ok());

    ExpectSameFields(*from_legacy, *from_flat);
    EXPECT_EQ(from_legacy->id(), from_flat->id());
    EXPECT_EQ(from_legacy->method(), from_flat->method());
  }
}

// --- Arena semantics ---------------------------------------------------------

TEST(Arena, ResetRetainsSlabs) {
  Arena arena(256);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) {
      void* p = arena.Allocate(48, 8);
      ASSERT_NE(p, nullptr);
    }
    const size_t slabs = arena.slab_count();
    arena.Reset();
    EXPECT_EQ(arena.slab_count(), slabs);  // kept for reuse
    EXPECT_EQ(arena.bytes_used(), 0u);
  }
}

TEST(Arena, OversizedRequestGetsDedicatedSlab) {
  Arena arena(128);
  void* big = arena.Allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 4096);  // must actually be addressable
  void* small = arena.Allocate(16, 8);
  ASSERT_NE(small, nullptr);
}

TEST(ArenaPool, RecyclesArenasThroughRelease) {
  ArenaPool pool(512);
  Arena* a = pool.Acquire();
  ASSERT_NE(a, nullptr);
  a->Allocate(64, 8);
  pool.Release(a);
  Arena* b = pool.Acquire();
  EXPECT_EQ(a, b);  // LIFO free list hands the same arena back
  EXPECT_EQ(b->bytes_used(), 0u);  // Release reset it
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
  pool.Release(b);
}

TEST(ArenaPool, MessageLeaseReleasesOnDestruction) {
  ArenaPool pool(512);
  {
    Message m = Message::WithArena(pool);
    m.SetText(InternFieldName("k"), "value-text");
    EXPECT_TRUE(m.arena_backed());
    EXPECT_EQ(pool.created(), 1u);
  }
  // Destroyed -> arena back on the free list; next lease reuses it.
  Message m2 = Message::WithArena(pool);
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
  (void)m2;
}

TEST(ArenaMessage, SetTextStoresBorrowedSlice) {
  ArenaPool pool(512);
  Message m = Message::WithArena(pool);
  const FieldId fid = InternFieldName("username");
  m.SetText(fid, "borrowed-text");
  const Value* v = m.FindField(fid);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->is_borrowed());
  EXPECT_EQ(v->AsText(), "borrowed-text");
}

TEST(ArenaMessage, CopyMaterializesToIndependentHeapMessage) {
  ArenaPool pool(512);
  Message copy;
  {
    Message m = Message::WithArena(pool);
    m.SetText(InternFieldName("username"), "alice");
    uint8_t raw[3] = {9, 8, 7};
    m.SetBytes(InternFieldName("payload"), raw);
    copy = m;  // deep copy; slices materialize
  }
  // Original destroyed, its arena reset — the copy must still be intact.
  EXPECT_FALSE(copy.arena_backed());
  const Value* user = copy.FindField(InternFieldName("username"));
  ASSERT_NE(user, nullptr);
  EXPECT_FALSE(user->is_borrowed());
  EXPECT_EQ(user->AsText(), "alice");
  const Value* payload = copy.FindField(InternFieldName("payload"));
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->AsBytes().size(), 3u);
  EXPECT_EQ(payload->AsBytes()[0], 9);
}

TEST(ArenaMessage, MoveCarriesTheLease) {
  ArenaPool pool(512);
  Message a = Message::WithArena(pool);
  a.SetText(InternFieldName("k"), "vvv");
  Message b = std::move(a);
  EXPECT_TRUE(b.arena_backed());
  EXPECT_FALSE(a.arena_backed());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.created(), 1u);
  const Value* v = b.FindField(InternFieldName("k"));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsText(), "vvv");
}

TEST(ArenaMessage, ProjectFieldsCompactsInPlace) {
  ArenaPool pool(512);
  Message m = Message::WithArena(pool);
  const FieldId keep1 = InternFieldName("a");
  const FieldId drop = InternFieldName("b");
  const FieldId keep2 = InternFieldName("c");
  m.SetField(keep1, Value(int64_t{1}));
  m.SetField(drop, Value(int64_t{2}));
  m.SetField(keep2, Value(int64_t{3}));
  const std::vector<FieldId> keep = {keep1, keep2};
  m.ProjectFields(keep);
  ASSERT_EQ(m.FieldCount(), 2u);
  EXPECT_EQ(m.fields()[0].id, keep1);
  EXPECT_EQ(m.fields()[1].id, keep2);
  EXPECT_FALSE(m.HasField(drop));
}

// --- Interner ----------------------------------------------------------------

TEST(Interner, SameNameSameId) {
  const FieldId a = InternFieldName("interner-test-field");
  const FieldId b = InternFieldName("interner-test-field");
  EXPECT_EQ(a, b);
  EXPECT_EQ(FieldNameOf(a), "interner-test-field");
}

TEST(Interner, DistinctNamesDistinctIds) {
  const FieldId a = InternFieldName("interner-x");
  const FieldId b = InternFieldName("interner-y");
  EXPECT_NE(a, b);
}

TEST(Interner, FindDoesNotIntern) {
  auto& interner = FieldInterner::Global();
  const size_t before = interner.size();
  EXPECT_FALSE(interner.Find("interner-never-seen-name").has_value());
  EXPECT_EQ(interner.size(), before);
  const FieldId id = interner.Intern("interner-now-seen");
  auto found = interner.Find("interner-now-seen");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, id);
}

}  // namespace
}  // namespace adn::rpc
