// The observability plane: metrics registry semantics, tracing mechanics,
// the documented telemetry contract (docs/OBSERVABILITY.md must enumerate
// every metric the data plane registers), and the three-layer span-tree
// parity guarantee — one fig5 RPC yields the same element spans in the same
// order whichever execution layer carries it.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "compiler/chain_compile.h"
#include "compiler/lower.h"
#include "controller/telemetry.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "mrpc/adn_path.h"
#include "mrpc/engine.h"
#include "obs/event_ring.h"
#include "obs/export.h"
#include "obs/intern.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stack/adn_filter.h"
#include "stack/proto_codec.h"

namespace adn {
namespace {

using obs::MetricsRegistry;
using obs::Tracer;

// Every metric name the data plane can register — the telemetry contract.
// docs/OBSERVABILITY.md must list each of these; conversely, anything the
// registry holds after exercising the layers must be on this list.
constexpr const char* kContractMetricNames[] = {
    "adn_chain_drops_total",      "adn_chain_rpcs_total",
    "adn_ctrl_pause_ns",          "adn_ctrl_queued_msgs_total",
    "adn_ctrl_reconfigs_total",   "adn_element_latency_ns",
    "adn_engine_utilization",     "adn_envoy_aborts_total",
    "adn_envoy_messages_total",   "adn_mesh_aborts_total",
    "adn_mesh_messages_total",    "adn_obs_events_dropped_total",
    "adn_obs_events_total",       "adn_obs_spans_evicted_total",
    "adn_obs_spans_total",        "adn_obs_traces_sampled_total",
    "adn_reconfig_blackout_ns",   "adn_reconfig_delta_replayed",
    "adn_rpc_latency_ns",         "adn_sim_busy_ns_total",
    "adn_sim_jobs_total",         "adn_sim_link_bytes_total",
    "adn_sim_link_messages_total", "adn_sim_queue_delay_ns",
    "adn_slo_burn",               "adn_slo_drop_fraction",
    "adn_slo_p99_ns",
};

// Fresh global obs state; call first in every test (instrument references
// cached before a Reset are stale, so build all chains after this).
void ResetObs() {
  obs::SetEnabled(false);
  // Discard ring-buffered events BEFORE the registry reset, so the drain's
  // fold-in of event totals lands in the instruments being discarded.
  Tracer::Default().Clear();
  obs::EventRingRegistry::Default().Reset();
  MetricsRegistry::Default().Reset();
  Tracer::Default().SetTracingEnabled(false);
  Tracer::Default().SetSampleEvery(1);
  Tracer::Default().SetRingCapacity(4096);
}

// --- Instruments ------------------------------------------------------------

TEST(Metrics, CounterWrapsModulo64Bits) {
  ResetObs();
  obs::Counter c;
  c.Inc(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(c.Value(), std::numeric_limits<uint64_t>::max());
  c.Inc(5);  // wraps: max + 5 == 4 mod 2^64
  EXPECT_EQ(c.Value(), 4u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Gauge g;
  g.Set(0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 0.5);
  g.Add(0.25);
  EXPECT_DOUBLE_EQ(g.Value(), 0.75);
  g.Set(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), -1.5);
}

TEST(Metrics, HistogramBucketBoundariesAreLe) {
  obs::Histogram h({10.0, 20.0, 30.0});
  h.Observe(10.0);   // == bound -> bucket 0 (le semantics)
  h.Observe(10.5);   // -> bucket 1
  h.Observe(20.0);   // == bound -> bucket 1
  h.Observe(31.0);   // past the last bound -> +Inf bucket
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 71.5);
}

TEST(Metrics, HistogramQuantileInterpolatesAndClamps) {
  obs::Histogram h({100.0, 200.0});
  for (int i = 0; i < 10; ++i) h.Observe(50.0);   // all in bucket 0
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1e-9);       // 5/10 through [0,100]
  h.Observe(1e9);                                 // one in +Inf
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 200.0);       // clamps to last bound
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(Metrics, RegistryReturnsSameInstrumentForSameNameAndLabels) {
  ResetObs();
  MetricsRegistry& reg = MetricsRegistry::Default();
  obs::Counter& a = reg.GetCounter("x_total", "k=\"v\"");
  obs::Counter& b = reg.GetCounter("x_total", "k=\"v\"");
  obs::Counter& other = reg.GetCounter("x_total", "k=\"w\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.Inc(3);
  obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::MetricSample* s = snap.Find("x_total", "k=\"v\"");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 3.0);
  EXPECT_EQ(snap.Find("x_total", "k=\"missing\""), nullptr);
}

// --- Tracer -----------------------------------------------------------------

TEST(Trace, SamplesOneInN) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  Tracer::Default().SetSampleEvery(3);
  for (uint64_t id = 0; id < 9; ++id) {
    obs::RpcTraceScope scope(id, obs::Tier::kEngine, "p", "rpc");
    EXPECT_EQ(scope.active(), id % 3 == 0);
  }
  EXPECT_EQ(Tracer::Default().TraceIds().size(), 3u);  // ids 0, 3, 6
  ResetObs();
}

TEST(Trace, RingEvictsOldestAndCountsEvictions) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  Tracer::Default().SetRingCapacity(4);
  for (uint64_t id = 1; id <= 6; ++id) {
    obs::RpcTraceScope scope(id, obs::Tier::kEngine, "p", "rpc");
  }
  // 6 root spans through a 4-slot ring: 2 evicted, newest 4 resident.
  std::vector<obs::Span> resident = Tracer::Default().AllSpans();
  ASSERT_EQ(resident.size(), 4u);
  EXPECT_EQ(resident.front().trace_id, 3u);
  EXPECT_EQ(resident.back().trace_id, 6u);
  obs::MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_DOUBLE_EQ(snap.Find("adn_obs_spans_total")->value, 6.0);
  EXPECT_DOUBLE_EQ(snap.Find("adn_obs_spans_evicted_total")->value, 2.0);
  ResetObs();
}

TEST(Trace, ChildSpansDefaultParentToRoot) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  {
    obs::RpcTraceScope scope(7, obs::Tier::kMesh, "sidecar", "rpc");
    ASSERT_TRUE(scope.active());
    obs::TraceContext* ctx = obs::CurrentTrace();
    ASSERT_NE(ctx, nullptr);
    size_t child = ctx->OpenSpan("stage-a");
    ctx->CloseSpan(child);
  }
  EXPECT_EQ(obs::CurrentTrace(), nullptr);  // scope uninstalled
  std::vector<obs::Span> spans = Tracer::Default().SpansForTrace(7);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name(), "rpc");
  EXPECT_EQ(spans[1].name(), "stage-a");
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_GE(spans[1].end_ns, spans[1].start_ns);
  ResetObs();
}

TEST(Metrics, ObserveNMatchesRepeatedObserve) {
  // The burst path batches per-segment histogram updates into one ObserveN
  // per burst; it must be indistinguishable from n scalar Observe calls.
  obs::MetricsRegistry registry;
  obs::Histogram& batched = registry.GetHistogram("batched_ns");
  obs::Histogram& scalar = registry.GetHistogram("scalar_ns");
  const double values[] = {0.0, 17.0, 300.0, 4096.0, 1e9};
  for (double v : values) {
    batched.ObserveN(v, 7);
    for (int i = 0; i < 7; ++i) scalar.Observe(v);
  }
  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::MetricSample* b = snap.Find("batched_ns");
  const obs::MetricSample* s = snap.Find("scalar_ns");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(b->count, s->count);
  EXPECT_DOUBLE_EQ(b->value, s->value);  // histogram sum
  EXPECT_EQ(b->bucket_counts, s->bucket_counts);
  EXPECT_DOUBLE_EQ(batched.Quantile(0.99), scalar.Quantile(0.99));
}

TEST(Trace, EventRingDrainsFifoAndCountsDrops) {
  // Private ring, single thread: accepted events come back in emit order,
  // overflow is dropped and counted, and a drain frees capacity again.
  obs::EventRing ring(8);  // rounds to capacity 8
  const size_t cap = ring.capacity();
  for (uint64_t i = 1; i <= cap + 3; ++i) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kBurst;
    e.span_id = i;
    EXPECT_EQ(ring.TryEmit(e), i <= cap);
  }
  EXPECT_EQ(ring.emitted(), cap);
  EXPECT_EQ(ring.dropped(), 3u);
  std::vector<obs::TraceEvent> buf(cap + 8);
  ASSERT_EQ(ring.Drain(buf.data(), buf.size()), cap);
  for (size_t i = 0; i < cap; ++i) EXPECT_EQ(buf[i].span_id, i + 1);
  EXPECT_EQ(ring.size(), 0u);
  obs::TraceEvent again;
  again.span_id = 99;
  EXPECT_TRUE(ring.TryEmit(again));  // space reclaimed by the drain
}

TEST(Trace, EventCountersFoldInAtDrainTimeNotPerEmit) {
  // Documented timing contract (docs/OBSERVABILITY.md "Event-counter
  // timing"): emitting touches only the producer's ring; the registry's
  // adn_obs_events_* series move when a consumer drains.
  ResetObs();
  obs::SetEnabled(true);
  for (uint64_t i = 0; i < 5; ++i) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kBurst;
    e.span_id = obs::NextSpanId();
    e.arg = 32;
    obs::EmitEvent(e);
  }
  obs::MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(before.Find("adn_obs_events_total"), nullptr);
  Tracer::Default().Collect();  // consumer drain syncs the counters
  obs::MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  const obs::MetricSample* total = after.Find("adn_obs_events_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->value, 5.0);
  // The burst markers are queryable from the collected store.
  size_t bursts = 0;
  for (const obs::TraceEvent& e : Tracer::Default().Events()) {
    if (e.kind == obs::EventKind::kBurst && e.arg == 32) ++bursts;
  }
  EXPECT_EQ(bursts, 5u);
  ResetObs();
}

TEST(Trace, ReconfigEventNamesAreInternedRuntimeConstants) {
  // The tools/tests enumeration must cover exactly the five first-class
  // reconfiguration transitions, each round-trippable through the interner
  // (the ring stores NameIds, the exporter resolves them back).
  const std::vector<std::string_view>& names = obs::ReconfigEventNames();
  EXPECT_EQ(names.size(), 5u);
  for (std::string_view expected :
       {obs::kEventReconfigSnapshot, obs::kEventReconfigBulkMerge,
        obs::kEventReconfigCutover, obs::kEventReconfigReplay,
        obs::kEventReconfigSwapProgram}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    const obs::NameId id = obs::InternName(expected);
    EXPECT_EQ(obs::NameOfId(id), expected);
  }
}

// --- Layer instrumentation ---------------------------------------------------

std::shared_ptr<const ir::ElementIr> Fig5Element(const std::string& name) {
  static auto lowered = [] {
    auto parsed = dsl::ParseProgram(elements::Fig5ProgramSource());
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto program = compiler::LowerProgram(*parsed);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return *program;
  }();
  auto element = lowered.FindElement(name);
  EXPECT_NE(element, nullptr) << name;
  return element;
}

void SeedAcl(ir::ElementInstance& acl) {
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    (void)acl.FindTable("ac_tab")->Insert(
        {rpc::Value(std::string(user)), rpc::Value("W")});
  }
}

rpc::Message Fig5Request(uint64_t id) {
  return rpc::Message::MakeRequest(
      id, "Echo.Call",
      {{"username", rpc::Value(std::string("alice"))},
       {"object_id", rpc::Value(static_cast<int64_t>(id))},
       {"payload", rpc::Value(Bytes{1, 2, 3, 4})}});
}

mrpc::EngineChain MakeFig5Chain(uint64_t seed) {
  mrpc::EngineChain chain;
  for (const char* name : {"Logging", "Acl", "Fault"}) {
    auto stage = std::make_unique<mrpc::GeneratedStage>(Fig5Element(name),
                                                        seed);
    if (std::string_view(name) == "Acl") SeedAcl(stage->instance());
    chain.AddStage(std::move(stage));
  }
  return chain;
}

// The element-name subsequence of a trace — the tree shape under test
// (layer-specific boundary spans like proto-decode filtered out).
std::vector<std::string> ElementSpanNames(const std::vector<obs::Span>& spans) {
  std::vector<std::string> out;
  for (const obs::Span& s : spans) {
    if (s.name() == "Logging" || s.name() == "Acl" || s.name() == "Fault") {
      out.push_back(std::string(s.name()));
    }
  }
  return out;
}

// Element-name children of each root span (a root's parent is not resident
// in the trace), in recording order — one entry per processor-direction
// scope. Response-direction scopes appear too (Logging runs on BOTH), so
// layer comparisons match against the request-direction entry.
std::vector<std::vector<std::string>> RootElementChildren(
    const std::vector<obs::Span>& spans) {
  std::vector<std::vector<std::string>> out;
  for (const obs::Span& root : spans) {
    bool resident_parent = false;
    for (const obs::Span& p : spans) {
      if (p.span_id == root.parent_id) resident_parent = true;
    }
    if (resident_parent) continue;
    std::vector<std::string> names;
    for (const obs::Span& c : spans) {
      if (c.parent_id != root.span_id) continue;
      if (c.name() == "Logging" || c.name() == "Acl" || c.name() == "Fault") {
        names.push_back(std::string(c.name()));
      }
    }
    out.push_back(std::move(names));
  }
  return out;
}

// Every element span must hang off a root span named `root` (single-level
// tree: root -> elements, in chain order).
void ExpectElementsUnderRoot(const std::vector<obs::Span>& spans,
                             const std::string& root) {
  for (const obs::Span& s : spans) {
    if (s.name() != "Logging" && s.name() != "Acl" && s.name() != "Fault") {
      continue;
    }
    const obs::Span* parent = nullptr;
    for (const obs::Span& p : spans) {
      if (p.span_id == s.parent_id) parent = &p;
    }
    ASSERT_NE(parent, nullptr) << s.name();
    EXPECT_EQ(parent->name(), root) << s.name();
  }
}

TEST(Obs, KillSwitchMakesInstrumentationANoOp) {
  ResetObs();  // obs disabled
  mrpc::EngineChain chain = MakeFig5Chain(/*seed=*/3);
  for (uint64_t id = 0; id < 50; ++id) {
    rpc::Message m = Fig5Request(id);
    (void)chain.Process(m, 0);
  }
  // Construction registers the element histograms (cheap, one-time); the
  // hot path must not have recorded anything.
  for (const obs::MetricSample& s :
       MetricsRegistry::Default().Snapshot().samples) {
    EXPECT_DOUBLE_EQ(s.value, 0.0) << s.name;
    EXPECT_EQ(s.count, 0u) << s.name;
  }
  EXPECT_TRUE(Tracer::Default().AllSpans().empty());
}

TEST(Obs, EngineLayerEmitsSpanTreeAndCounters) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  mrpc::EngineChain chain = MakeFig5Chain(/*seed=*/3);
  chain.set_trace_identity(obs::Tier::kEngine, "test-engine");
  rpc::Message m = Fig5Request(42);
  ASSERT_EQ(chain.Process(m, 0).outcome, ir::ProcessOutcome::kPass);

  std::vector<obs::Span> spans = Tracer::Default().SpansForTrace(42);
  EXPECT_EQ(ElementSpanNames(spans),
            (std::vector<std::string>{"Logging", "Acl", "Fault"}));
  ExpectElementsUnderRoot(spans, "rpc");
  for (const obs::Span& s : spans) {
    EXPECT_EQ(s.tier, obs::Tier::kEngine);
    EXPECT_EQ(s.processor(), "test-engine");
  }

  obs::MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_DOUBLE_EQ(
      snap.Find("adn_chain_rpcs_total", "processor=\"test-engine\"")->value,
      1.0);
  const obs::MetricSample* lat =
      snap.Find("adn_element_latency_ns", "element=\"Acl\"");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);
  ResetObs();
}

TEST(Obs, InterpreterTierEmitsSameSpansAsCompiled) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  // Run the fig5 elements through the interpreter (reference semantics)
  // under an engine scope; the span tree must match the compiled tier's.
  ir::ElementInstance logging(Fig5Element("Logging"), 3);
  ir::ElementInstance acl(Fig5Element("Acl"), 3);
  ir::ElementInstance fault(Fig5Element("Fault"), 3);
  SeedAcl(acl);
  rpc::Message m = Fig5Request(9);
  {
    obs::RpcTraceScope scope(9, obs::Tier::kEngine, "interp-engine", "rpc");
    for (ir::ElementInstance* inst : {&logging, &acl, &fault}) {
      ASSERT_EQ(inst->Process(m, 0).outcome, ir::ProcessOutcome::kPass);
    }
  }
  std::vector<obs::Span> spans = Tracer::Default().SpansForTrace(9);
  EXPECT_EQ(ElementSpanNames(spans),
            (std::vector<std::string>{"Logging", "Acl", "Fault"}));
  ExpectElementsUnderRoot(spans, "rpc");
  ResetObs();
}

// One RPC, three execution layers, one span-tree shape: the tentpole
// guarantee. Engine (compiled stages), mesh (AdnChainFilter inside the
// sidecar), and the simulated path must each yield root "rpc" with children
// [Logging, Acl, Fault] in chain order.
TEST(Obs, Fig5SpanTreeIsIdenticalAcrossEngineMeshAndSimLayers) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);

  // --- Engine layer ---------------------------------------------------------
  mrpc::EngineChain chain = MakeFig5Chain(/*seed=*/3);
  rpc::Message m = Fig5Request(100);
  ASSERT_EQ(chain.Process(m, 0).outcome, ir::ProcessOutcome::kPass);
  std::vector<obs::Span> engine_spans = Tracer::Default().SpansForTrace(100);
  std::vector<std::string> engine_names = ElementSpanNames(engine_spans);
  ExpectElementsUnderRoot(engine_spans, "rpc");

  // --- Mesh layer (sidecar filter) -----------------------------------------
  rpc::Schema schema;
  (void)schema.AddColumn({"username", rpc::ValueType::kText, false});
  (void)schema.AddColumn({"object_id", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"payload", rpc::ValueType::kBytes, false});
  std::vector<std::shared_ptr<const ir::ElementIr>> elems = {
      Fig5Element("Logging"), Fig5Element("Acl"), Fig5Element("Fault")};
  auto program = compiler::CompileChainProgram(elems, {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  stack::AdnChainFilter filter(*program, elems, schema, /*seed=*/3);
  SeedAcl(filter.instance(1));
  stack::ProtoSchema proto(schema);
  auto body = stack::ProtoEncode(Fig5Request(0), proto);
  ASSERT_TRUE(body.ok());
  Bytes wire = *body;
  stack::HeaderList headers;
  Rng rng(1);
  std::vector<std::string> log;
  stack::FilterContext ctx;
  ctx.headers = &headers;
  ctx.body = &wire;
  ctx.is_request = true;
  ctx.stream_id = 2 * 200 + 1;  // gRPC stream for rpc_id 200
  ctx.rng = &rng;
  ctx.access_log = &log;
  ASSERT_EQ(filter.OnMessage(ctx).action, stack::FilterAction::kContinue);
  std::vector<obs::Span> mesh_spans = Tracer::Default().SpansForTrace(200);
  std::vector<std::string> mesh_names = ElementSpanNames(mesh_spans);
  ExpectElementsUnderRoot(mesh_spans, "rpc");
  // The mesh pays the proxy boundary: decode/encode spans ride alongside.
  bool saw_decode = false, saw_encode = false;
  for (const obs::Span& s : mesh_spans) {
    saw_decode |= s.name() == "proto-decode";
    saw_encode |= s.name() == "proto-encode";
    EXPECT_EQ(s.tier, obs::Tier::kMesh);
  }
  EXPECT_TRUE(saw_decode);
  EXPECT_TRUE(saw_encode);

  // --- Simulated path -------------------------------------------------------
  // All three stages on the server engine, 20 closed-loop RPCs. Fault drops
  // ~5%, so probe resident traces for one that passed all three elements.
  mrpc::AdnPathConfig config;
  config.concurrency = 1;
  config.measured_requests = 20;
  config.warmup_requests = 0;
  config.make_request = [](uint64_t id, Rng&) { return Fig5Request(id); };
  for (const char* name : {"Logging", "Acl", "Fault"}) {
    config.stages.push_back(
        {mrpc::Site::kServerEngine, [name] {
           auto stage = std::make_unique<mrpc::GeneratedStage>(
               Fig5Element(name), /*seed=*/3);
           if (std::string_view(name) == "Acl") SeedAcl(stage->instance());
           return stage;
         }});
  }
  config.header.fields = {{"username", rpc::ValueType::kText},
                          {"object_id", rpc::ValueType::kInt},
                          {"payload", rpc::ValueType::kBytes}};
  (void)mrpc::RunAdnPathExperiment(config);
  // A sim trace holds two "rpc" roots: the request pass (Logging, Acl,
  // Fault) and the response pass back through the same server-engine chain
  // (just Logging — it runs on BOTH directions). Pick the request-direction
  // root for the cross-layer comparison.
  std::vector<std::string> sim_names;
  std::vector<obs::Span> sim_spans;
  for (uint64_t id : Tracer::Default().TraceIds()) {
    if (id == 100 || id == 200) continue;  // the engine/mesh traces above
    std::vector<obs::Span> spans = Tracer::Default().SpansForTrace(id);
    for (std::vector<std::string>& names : RootElementChildren(spans)) {
      if (names.size() == 3) {
        sim_spans = std::move(spans);
        sim_names = std::move(names);
        break;
      }
    }
    if (!sim_names.empty()) break;
  }
  ASSERT_FALSE(sim_names.empty()) << "no fully-passed sim trace sampled";
  ExpectElementsUnderRoot(sim_spans, "rpc");
  bool saw_sim_tier = false;
  for (const obs::Span& s : sim_spans) {
    if (s.tier == obs::Tier::kSim && s.processor() == "server-engine") {
      saw_sim_tier = true;
    }
  }
  EXPECT_TRUE(saw_sim_tier);

  // The contract: same stage names, same order, on every layer.
  EXPECT_EQ(engine_names,
            (std::vector<std::string>{"Logging", "Acl", "Fault"}));
  EXPECT_EQ(mesh_names, engine_names);
  EXPECT_EQ(sim_names, engine_names);
  ResetObs();
}

// --- JSON export -------------------------------------------------------------

TEST(Obs, ExportJsonContainsMetricsAndNestedTraces) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  mrpc::EngineChain chain = MakeFig5Chain(/*seed=*/3);
  chain.set_trace_identity(obs::Tier::kEngine, "json-engine");
  rpc::Message m = Fig5Request(5);
  ASSERT_EQ(chain.Process(m, 0).outcome, ir::ProcessOutcome::kPass);

  std::string json = obs::ExportJson();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"traces\":["), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rpc\""), std::string::npos);
  // Children nest under the root span's "children" array.
  const size_t root = json.find("\"name\":\"rpc\"");
  const size_t children = json.find("\"children\":[", root);
  ASSERT_NE(children, std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Logging\"", children), std::string::npos);
  EXPECT_NE(json.find("adn_chain_rpcs_total"), std::string::npos);
  ResetObs();
}

TEST(Obs, ExportChromeTraceJsonEmitsSpansAndInstantEvents) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  mrpc::EngineChain chain = MakeFig5Chain(/*seed=*/3);
  chain.set_trace_identity(obs::Tier::kEngine, "trace-engine");
  rpc::Message m = Fig5Request(5);
  ASSERT_EQ(chain.Process(m, 0).outcome, ir::ProcessOutcome::kPass);
  obs::TraceEvent reconfig;  // one instant event alongside the spans
  reconfig.kind = obs::EventKind::kReconfig;
  reconfig.name_id = obs::InternName(obs::kEventReconfigCutover);
  reconfig.processor_id = obs::InternName("trace-engine");
  reconfig.start_ns = reconfig.end_ns = obs::NowNs();
  reconfig.arg = 3;
  obs::EmitEvent(reconfig);

  const std::string json = obs::ExportChromeTraceJson();
  // Spans render as complete events on their processor's thread row ...
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rpc\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Logging\""), std::string::npos);
  // ... with thread_name metadata naming the processor ...
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("trace-engine"), std::string::npos);
  // ... and reconfig transitions as global instant events.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reconfig.cutover\""), std::string::npos);
  ResetObs();
}

// --- Controller feedback (Figure 3) ------------------------------------------

TEST(Telemetry, IngestSnapshotSeedsBaselinesThenDiffsWindows) {
  ResetObs();
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("adn_chain_rpcs_total", "processor=\"p\"").Inc(100);
  reg.GetCounter("adn_chain_drops_total", "processor=\"p\"").Inc(20);
  reg.GetGauge("adn_engine_utilization", "processor=\"p\"").Set(0.9);

  // First snapshot: counters carry pre-watch history, so they only seed the
  // baselines (delta 0). Gauges are instantaneous and flow immediately.
  controller::TelemetryHub hub;
  ASSERT_TRUE(hub.IngestSnapshot(reg.Snapshot(), 0, 100).ok());
  EXPECT_EQ(hub.reports_ingested(), 1u);
  EXPECT_DOUBLE_EQ(hub.SmoothedUtilization("p"), 0.9);
  EXPECT_EQ(hub.Advise("p"), controller::ScalingAdvice::kScaleOut);
  EXPECT_TRUE(hub.DropAlerts().empty());  // 20 lifetime drops: not a window

  // Second window: counters are cumulative; the hub diffs against the seed.
  reg.GetCounter("adn_chain_rpcs_total", "processor=\"p\"").Inc(100);
  reg.GetCounter("adn_chain_drops_total", "processor=\"p\"").Inc(30);
  reg.GetGauge("adn_engine_utilization", "processor=\"p\"").Set(0.1);
  ASSERT_TRUE(hub.IngestSnapshot(reg.Snapshot(), 100, 200).ok());
  EXPECT_EQ(hub.reports_ingested(), 2u);
  EXPECT_DOUBLE_EQ(hub.SmoothedUtilization("p"), 0.5);  // (0.9 + 0.1) / 2
  // This window: 100 rpcs, 30 drops -> 30 / 100 = 0.3 > 0.1 threshold.
  EXPECT_EQ(hub.DropAlerts(), std::vector<std::string>{"p"});
}

// --- Windowed series (obs/window.h) ------------------------------------------

TEST(Window, SnapshotHistogramQuantileEmpty) {
  obs::SnapshotHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(Window, SnapshotHistogramQuantileSingleBucket) {
  // All mass in (100, 250]: every quantile interpolates inside that bucket.
  obs::SnapshotHistogram h;
  h.upper_bounds = {100, 250, 500};
  h.bucket_counts = {0, 10, 0, 0};
  h.count = 10;
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 175.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 250.0);
}

TEST(Window, SnapshotHistogramQuantileOverflowBucketClampsToLastBound) {
  // Mass in the +Inf bucket: quantiles there clamp to the last finite bound
  // rather than inventing a value beyond the instrument's range.
  obs::SnapshotHistogram h;
  h.upper_bounds = {100, 250};
  h.bucket_counts = {2, 0, 8};  // 8 of 10 beyond 250
  h.count = 10;
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 250.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.1), 50.0);
}

TEST(Window, SnapshotHistogramMatchesLiveHistogramQuantile) {
  ResetObs();
  obs::SetEnabled(true);
  MetricsRegistry& reg = MetricsRegistry::Default();
  obs::Histogram& live = reg.GetHistogram("adn_element_latency_ns",
                                          "element=\"q\"");
  for (int i = 1; i <= 1000; ++i) live.Observe(static_cast<double>(i * 7));
  const obs::MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  const obs::SnapshotHistogram h =
      obs::SnapshotHistogram::FromSample(snap.samples[0]);
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), live.Quantile(q)) << "q=" << q;
  }
  ResetObs();
}

TEST(Window, WindowedSeriesSeedsThenRatesAndHistogramDeltas) {
  ResetObs();
  obs::SetEnabled(true);
  MetricsRegistry& reg = MetricsRegistry::Default();
  obs::Counter& rpcs = reg.GetCounter("adn_chain_rpcs_total",
                                      "processor=\"w\"");
  obs::Histogram& lat = reg.GetHistogram("adn_rpc_latency_ns", "tier=\"t\"");
  rpcs.Inc(500);
  lat.Observe(200);

  obs::WindowedSeries series;
  series.Ingest(reg.Snapshot(), 0, 1'000'000'000);
  // First window seeds: the 500 pre-existing rpcs are baseline, not rate.
  EXPECT_EQ(series.CounterDelta("adn_chain_rpcs_total", "processor=\"w\""),
            0u);
  const obs::SnapshotHistogram* d0 =
      series.HistogramDelta("adn_rpc_latency_ns", "tier=\"t\"");
  ASSERT_NE(d0, nullptr);
  EXPECT_TRUE(d0->empty());

  rpcs.Inc(250);
  for (int i = 0; i < 8; ++i) lat.Observe(400);
  series.Ingest(reg.Snapshot(), 1'000'000'000, 2'000'000'000);
  EXPECT_EQ(series.CounterDelta("adn_chain_rpcs_total", "processor=\"w\""),
            250u);
  EXPECT_DOUBLE_EQ(
      series.CounterRatePerSec("adn_chain_rpcs_total", "processor=\"w\""),
      250.0);
  const obs::SnapshotHistogram* d1 =
      series.HistogramDelta("adn_rpc_latency_ns", "tier=\"t\"");
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->count, 8u);  // only this window's observations
  EXPECT_EQ(series.FirstLabels("adn_rpc_latency_ns"), "tier=\"t\"");
  EXPECT_EQ(series.windows(), 2u);
  ResetObs();
}

TEST(Window, WindowedSeriesKeepsBoundedHistory) {
  ResetObs();
  obs::SetEnabled(true);
  MetricsRegistry& reg = MetricsRegistry::Default();
  obs::Counter& c = reg.GetCounter("adn_chain_rpcs_total", "processor=\"k\"");
  obs::WindowedSeries series(/*keep_windows=*/3);
  for (int i = 0; i < 10; ++i) {
    c.Inc(static_cast<uint64_t>(i + 1));
    series.Ingest(reg.Snapshot(), i, i + 1);
  }
  EXPECT_EQ(series.windows(), 3u);
  // Window(0) is the most recent (delta 10), Window(2) the oldest kept (8).
  EXPECT_EQ(series.Window(0).counter_deltas.at(
                "adn_chain_rpcs_total|processor=\"k\""),
            10u);
  EXPECT_EQ(series.Window(2).counter_deltas.at(
                "adn_chain_rpcs_total|processor=\"k\""),
            8u);
  ResetObs();
}

// --- Documentation contract --------------------------------------------------

TEST(Contract, ObservabilityDocEnumeratesEveryMetric) {
  std::ifstream doc(std::string(SOURCE_DIR) + "/docs/OBSERVABILITY.md");
  ASSERT_TRUE(doc.good()) << "docs/OBSERVABILITY.md missing";
  std::stringstream buf;
  buf << doc.rdbuf();
  const std::string text = buf.str();
  for (const char* name : kContractMetricNames) {
    EXPECT_NE(text.find(name), std::string::npos)
        << "docs/OBSERVABILITY.md does not document " << name;
  }
}

TEST(Contract, RegistryNamesStayWithinTheDocumentedSet) {
  ResetObs();
  obs::SetEnabled(true);
  Tracer::Default().SetTracingEnabled(true);
  // Exercise the layers that register organically in-process: engine chain,
  // tracer flush, sim stations and links.
  mrpc::EngineChain chain = MakeFig5Chain(/*seed=*/3);
  for (uint64_t id = 0; id < 10; ++id) {
    rpc::Message m = Fig5Request(id);
    (void)chain.Process(m, 0);
  }
  sim::Simulator simulator;
  sim::CpuStation station(&simulator, "contract-station", 1);
  (void)station.Submit(10, nullptr);
  sim::Link link(&simulator, "contract-link", 100, 10.0);
  (void)link.Send(64, nullptr);
  (void)MetricsRegistry::Default().GetGauge("adn_engine_utilization",
                                            "processor=\"engine\"");
  for (const std::string& name : MetricsRegistry::Default().MetricNames()) {
    bool documented = false;
    for (const char* contract : kContractMetricNames) {
      if (name == contract) documented = true;
    }
    EXPECT_TRUE(documented)
        << name << " is registered but absent from the telemetry contract "
        << "(add it to docs/OBSERVABILITY.md and kContractMetricNames)";
  }
  ResetObs();
}

}  // namespace
}  // namespace adn
