// Autoscaler tests: sustained-advice gating, per-site cooldown, width
// bounds, and the migrate closure's lossless shard/merge round trip on a
// live engine chain.
#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "controller/autoscale.h"
#include "controller/migration.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "obs/metrics.h"

namespace adn::controller {
namespace {

constexpr sim::SimTime kMs = 1'000'000;
constexpr const char* kProc = "client-engine";
constexpr const char* kProcLabels = "processor=\"client-engine\"";

// One synthetic report window for a single client-engine site.
mrpc::PathReport Report(int tick, int width) {
  mrpc::PathReport r;
  r.window_start = tick * kMs;
  r.window_end = (tick + 1) * kMs;
  r.issued = 1'000;
  r.completed = 1'000;
  mrpc::SiteWindow site;
  site.site = mrpc::Site::kClientEngine;
  site.processor = kProc;
  site.width = width;
  r.sites.push_back(site);
  return r;
}

// The hub reads utilization from the obs gauge, not from the PathReport.
void SetUtil(obs::MetricsRegistry& reg, double u) {
  reg.GetGauge("adn_engine_utilization", kProcLabels).Set(u);
}

AutoscaleOptions FastOptions() {
  AutoscaleOptions opts;
  opts.telemetry.window_reports = 1;  // advice tracks the latest window
  opts.sustain_windows = 2;
  opts.cooldown_windows = 1;
  return opts;
}

TEST(Autoscale, SustainedScaleOutDoublesWidth) {
  obs::MetricsRegistry reg;
  Autoscaler scaler(&reg, FastOptions());

  SetUtil(reg, 0.95);
  EXPECT_TRUE(scaler.OnReport(Report(0, 1)).empty());  // streak 1: hold
  auto commands = scaler.OnReport(Report(1, 1));       // streak 2: act
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].site, mrpc::Site::kClientEngine);
  EXPECT_EQ(commands[0].new_width, 2);
  ASSERT_EQ(scaler.decisions().size(), 1u);
  EXPECT_EQ(scaler.decisions()[0].advice, ScalingAdvice::kScaleOut);
  EXPECT_EQ(scaler.decisions()[0].old_width, 1);
  EXPECT_EQ(scaler.decisions()[0].new_width, 2);
}

TEST(Autoscale, CooldownThenFreshStreakBeforeNextAction) {
  obs::MetricsRegistry reg;
  Autoscaler scaler(&reg, FastOptions());

  SetUtil(reg, 0.95);
  (void)scaler.OnReport(Report(0, 1));
  ASSERT_EQ(scaler.OnReport(Report(1, 1)).size(), 1u);  // 1 -> 2
  // Cooldown tick, then the sustain streak must rebuild from zero.
  EXPECT_TRUE(scaler.OnReport(Report(2, 2)).empty());  // resting
  EXPECT_TRUE(scaler.OnReport(Report(3, 2)).empty());  // streak 1
  auto commands = scaler.OnReport(Report(4, 2));       // streak 2: act
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].new_width, 4);
}

TEST(Autoscale, ScaleInHalvesButNeverBelowMinWidth) {
  obs::MetricsRegistry reg;
  Autoscaler scaler(&reg, FastOptions());

  SetUtil(reg, 0.05);
  (void)scaler.OnReport(Report(0, 4));
  auto commands = scaler.OnReport(Report(1, 4));
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].new_width, 2);
  ASSERT_EQ(scaler.decisions().size(), 1u);
  EXPECT_EQ(scaler.decisions()[0].advice, ScalingAdvice::kScaleIn);

  // At the floor, sustained scale-in advice is a no-op (no thrash).
  Autoscaler floor(&reg, FastOptions());
  for (int tick = 0; tick < 4; ++tick) {
    EXPECT_TRUE(floor.OnReport(Report(tick, 1)).empty());
  }
  EXPECT_TRUE(floor.decisions().empty());
}

TEST(Autoscale, MaxWidthCapsScaleOut) {
  obs::MetricsRegistry reg;
  Autoscaler scaler(&reg, FastOptions());

  SetUtil(reg, 0.95);
  for (int tick = 0; tick < 4; ++tick) {
    EXPECT_TRUE(scaler.OnReport(Report(tick, 8)).empty());
  }
  EXPECT_TRUE(scaler.decisions().empty());
}

TEST(Autoscale, SteadyAdviceResetsStreaks) {
  obs::MetricsRegistry reg;
  Autoscaler scaler(&reg, FastOptions());

  SetUtil(reg, 0.95);
  (void)scaler.OnReport(Report(0, 1));  // streak 1
  SetUtil(reg, 0.50);                   // steady: streak resets
  EXPECT_TRUE(scaler.OnReport(Report(1, 1)).empty());
  SetUtil(reg, 0.95);
  EXPECT_TRUE(scaler.OnReport(Report(2, 1)).empty());  // streak 1 again
  EXPECT_EQ(scaler.OnReport(Report(3, 1)).size(), 1u);
}

TEST(Autoscale, MigrateClosureRoundTripsStateThroughShardMerge) {
  obs::MetricsRegistry reg;
  Autoscaler scaler(&reg, FastOptions());

  // A live Logging chain with real accumulated state.
  auto parsed = dsl::ParseProgram(std::string(elements::LogTableSql()) +
                                  std::string(elements::LoggingSql()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  mrpc::EngineChain chain;
  chain.AddStage(std::make_unique<mrpc::GeneratedStage>(
      program->FindElement("Logging"), 11));
  for (uint64_t id = 0; id < 200; ++id) {
    rpc::Message m = rpc::Message::MakeRequest(
        id, "Echo.Call",
        {{"username", rpc::Value(std::string("alice"))},
         {"object_id", rpc::Value(static_cast<int64_t>(id))},
         {"payload", rpc::Value(Bytes{1, 2, 3})}});
    ASSERT_EQ(chain.Process(m, static_cast<int64_t>(id)).outcome,
              ir::ProcessOutcome::kPass);
  }
  auto& before = dynamic_cast<mrpc::GeneratedStage&>(chain.stage(0));
  const uint64_t state_hash = before.instance().StateContentHash();

  SetUtil(reg, 0.95);
  (void)scaler.OnReport(Report(0, 1));
  auto commands = scaler.OnReport(Report(1, 1));
  ASSERT_EQ(commands.size(), 1u);
  ASSERT_TRUE(commands[0].migrate != nullptr);

  const sim::SimTime pause = commands[0].migrate(chain);
  EXPECT_GE(pause, EstimatePauseNs(0));  // at least the handshake floor

  // The stage was swapped for the merged instance; the state survived the
  // shard/merge round trip bit-for-bit, and the chain still processes.
  auto& after = dynamic_cast<mrpc::GeneratedStage&>(chain.stage(0));
  EXPECT_EQ(after.instance().StateContentHash(), state_hash);
  rpc::Message m = rpc::Message::MakeRequest(
      500, "Echo.Call",
      {{"username", rpc::Value(std::string("bob"))},
       {"object_id", rpc::Value(static_cast<int64_t>(500))},
       {"payload", rpc::Value(Bytes{4, 5})}});
  EXPECT_EQ(chain.Process(m, 500).outcome, ir::ProcessOutcome::kPass);
  EXPECT_NE(after.instance().StateContentHash(), state_hash);
}

}  // namespace
}  // namespace adn::controller
