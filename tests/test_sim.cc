// Unit tests for the discrete-event simulator: event ordering, station
// queueing math, link serialization, latency statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/station.h"
#include "sim/stats.h"

namespace adn::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  sim.At(5, [&] { order.push_back(2); });
  sim.At(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) sim.After(10, chain);
  };
  sim.After(10, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilAdvancesClockPastQuietPeriods) {
  Simulator sim;
  bool fired = false;
  sim.At(100, [&] { fired = true; });
  sim.RunUntil(50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 50);
  sim.RunUntil(150);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 150);
}

TEST(CpuStation, SingleServerSerializesJobs) {
  Simulator sim;
  CpuStation station(&sim, "cpu", 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    station.Submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(station.busy_time(), 300);
  EXPECT_EQ(station.max_queue_delay(), 200);
}

TEST(CpuStation, ParallelServersOverlap) {
  Simulator sim;
  CpuStation station(&sim, "cpu", 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    station.Submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 100, 200, 200}));
}

TEST(CpuStation, UtilizationMath) {
  Simulator sim;
  CpuStation station(&sim, "cpu", 2);
  station.Submit(100, nullptr);
  station.Submit(100, nullptr);
  sim.RunUntil(200);
  EXPECT_DOUBLE_EQ(station.Utilization(200), 0.5);  // 200 busy / (200 * 2)
  station.ResetStats();
  EXPECT_EQ(station.busy_time(), 0);
}

TEST(CpuStation, LaterSubmitStartsAtNow) {
  Simulator sim;
  CpuStation station(&sim, "cpu", 1);
  SimTime done1 = station.Submit(50, nullptr);
  EXPECT_EQ(done1, 50);
  sim.RunUntil(200);  // idle gap
  SimTime done2 = station.Submit(50, nullptr);
  EXPECT_EQ(done2, 250);  // starts at now=200, not at 50
}

TEST(Link, PropagationOnly) {
  Simulator sim;
  Link link(&sim, "wire", 5000, /*bandwidth_gbps=*/0);
  SimTime arrival = link.Send(1'000'000, nullptr);
  EXPECT_EQ(arrival, 5000);  // infinite bandwidth: no serialization
}

TEST(Link, SerializationDelayAndFifo) {
  Simulator sim;
  // 1 Gbps = 8 ns per byte.
  Link link(&sim, "wire", 1000, 1.0);
  SimTime first = link.Send(1000, nullptr);   // tx 8000 + prop 1000
  SimTime second = link.Send(1000, nullptr);  // queued behind first tx
  EXPECT_EQ(first, 9000);
  EXPECT_EQ(second, 17000);
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.bytes_sent(), 2000u);
}

TEST(LatencyRecorder, Percentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(i * 1000);  // 1..100 us
  EXPECT_DOUBLE_EQ(rec.MeanMicros(), 50.5);
  EXPECT_NEAR(rec.PercentileMicros(0.50), 50.5, 0.51);
  EXPECT_NEAR(rec.PercentileMicros(0.99), 99.0, 1.01);
  EXPECT_DOUBLE_EQ(rec.MinMicros(), 1.0);
  EXPECT_DOUBLE_EQ(rec.MaxMicros(), 100.0);
}

// Regression for the sort-once percentile cache: interleaving Record calls
// with percentile reads must keep every statistic in agreement with a naive
// recompute over the samples so far.
TEST(LatencyRecorder, CacheStaysCoherentAcrossRecordAndRead) {
  LatencyRecorder rec;
  std::vector<SimTime> seen;
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const SimTime sample = static_cast<SimTime>(x % 1'000'000);
    rec.Record(sample);
    seen.push_back(sample);
    if (i % 7 != 0) continue;  // read mid-stream to exercise invalidation
    std::vector<SimTime> sorted = seen;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(rec.MinMicros(), sorted.front() / 1000.0);
    EXPECT_DOUBLE_EQ(rec.MaxMicros(), sorted.back() / 1000.0);
    EXPECT_DOUBLE_EQ(rec.PercentileMicros(0.0), sorted.front() / 1000.0);
    EXPECT_DOUBLE_EQ(rec.PercentileMicros(1.0), sorted.back() / 1000.0);
    const double q = 0.5;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double naive =
        (static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac) /
        1000.0;
    EXPECT_NEAR(rec.PercentileMicros(q), naive, 1e-9);
  }
  rec.Clear();
  EXPECT_DOUBLE_EQ(rec.PercentileMicros(0.5), 0.0);
  rec.Record(42'000);
  EXPECT_DOUBLE_EQ(rec.PercentileMicros(0.5), 42.0);
}

// Regression for the fixed-size snprintf buffer ToString used to have: a
// long label must come through whole, not truncated at 256 bytes.
TEST(RunStats, ToStringSurvivesLongLabels) {
  RunStats stats;
  stats.label = std::string(600, 'x');
  stats.completed = 123456789;
  stats.throughput_krps = 1234.5;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find(stats.label), std::string::npos);
  EXPECT_NE(s.find("123456789"), std::string::npos);
  EXPECT_EQ(s.find('\0'), std::string::npos);
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_DOUBLE_EQ(rec.MeanMicros(), 0.0);
  EXPECT_DOUBLE_EQ(rec.PercentileMicros(0.99), 0.0);
}

// Little's law sanity for a closed loop on one station: N customers, service
// time S, one server => throughput = 1/S and latency = N*S.
class ClosedLoopLittlesLaw : public ::testing::TestWithParam<int> {};

TEST_P(ClosedLoopLittlesLaw, HoldsOnSingleStation) {
  const int n = GetParam();
  constexpr SimTime kService = 1000;
  constexpr int kTotal = 1000;
  Simulator sim;
  CpuStation station(&sim, "cpu", 1);
  LatencyRecorder latencies;
  int completed = 0;
  std::function<void()> issue = [&] {
    SimTime start = sim.now();
    station.Submit(kService, [&, start] {
      latencies.Record(sim.now() - start);
      if (++completed + n <= kTotal) issue();
    });
  };
  for (int i = 0; i < n; ++i) issue();
  sim.Run();
  double mean_us = latencies.MeanMicros();
  EXPECT_NEAR(mean_us, static_cast<double>(n) * 1.0, 0.05 * n);
}

INSTANTIATE_TEST_SUITE_P(Concurrency, ClosedLoopLittlesLaw,
                         ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace adn::sim
