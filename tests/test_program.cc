// ChainProgram executor tests: program structure, whole-chain execution
// with kind guards, the mesh-path deployment, and migration invariance of
// the compiled tier (state stays in ElementInstance, so snapshot/restore,
// split/merge behave identically under either executor).
#include <gtest/gtest.h>

#include "compiler/chain_compile.h"
#include "compiler/compiler.h"
#include "compiler/lower.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/program.h"
#include "stack/mesh_path.h"

namespace adn {
namespace {

using ir::ProcessOutcome;
using rpc::Message;
using rpc::Value;

compiler::ProgramIr Lower(const std::string& source) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

std::shared_ptr<const ir::ElementIr> LowerNamed(const std::string& source,
                                                const std::string& name) {
  auto program = Lower(source);
  auto element = program.FindElement(name);
  EXPECT_NE(element, nullptr) << name;
  return element;
}

// --- Program structure ---------------------------------------------------------

TEST(ChainProgram, CompilesAclToExpectedShape) {
  auto code = LowerNamed(std::string(elements::AclTableSql()) +
                             std::string(elements::AclSql()),
                         "Acl");
  auto program = compiler::CompileElementProgram(*code);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const ir::ChainProgram& p = *program.value();
  ASSERT_EQ(p.elements.size(), 1u);
  EXPECT_EQ(p.elements[0].name, "Acl");
  // The hand-coded twins in elements/handcoded.cc are calibrated against
  // these instruction counts; a codegen change that shifts them must
  // recalibrate the twins to keep the 3-12% band.
  EXPECT_EQ(p.elements[0].instr_count, 11u);
  EXPECT_GT(p.num_registers, 0);
  std::string listing = p.DebugString();
  EXPECT_NE(listing.find("lookup"), std::string::npos) << listing;
  EXPECT_NE(listing.find("drop"), std::string::npos) << listing;
}

TEST(ChainProgram, TwinCalibrationInstructionCounts) {
  struct Case {
    std::string source;
    const char* name;
    uint32_t instr_count;
  };
  std::vector<Case> cases = {
      {std::string(elements::LogTableSql()) +
           std::string(elements::LoggingSql()),
       "Logging", 6},
      {std::string(elements::FaultSql()), "Fault", 9},
      {std::string(elements::EndpointsTableSql()) +
           std::string(elements::HashLbSql()),
       "HashLb", 12},
      {std::string(elements::CompressSql()), "Compress", 6},
  };
  for (const auto& c : cases) {
    auto code = LowerNamed(c.source, c.name);
    auto program = compiler::CompileElementProgram(*code);
    ASSERT_TRUE(program.ok()) << c.name << ": "
                              << program.status().ToString();
    EXPECT_EQ(program.value()->elements[0].instr_count, c.instr_count)
        << c.name;
  }
}

TEST(ChainProgram, FilterElementsAreRejected) {
  auto program = Lower(std::string(elements::RateLimitFilterSql()));
  auto filter = program.FindElement("Limiter");
  ASSERT_NE(filter, nullptr);
  auto compiled = compiler::CompileElementProgram(*filter);
  EXPECT_FALSE(compiled.ok());
}

TEST(ChainProgram, CompileSourceAttachesProgramToChain) {
  compiler::Compiler c;
  auto compiled = c.CompileSource(elements::Fig5ProgramSource(), {});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const compiler::CompiledChain* chain = compiled->FindChain("fig5");
  ASSERT_NE(chain, nullptr);
  ASSERT_NE(chain->program, nullptr);
  EXPECT_EQ(chain->program->elements.size(), 3u);
  EXPECT_GT(chain->program->TotalInstrCount(), 0u);
}

// --- Whole-chain execution with kind guards -----------------------------------

TEST(ChainExecutor, KindGuardSkipsNonMatchingElements) {
  auto code = LowerNamed(std::string(elements::FaultSql()), "Fault");
  auto program =
      compiler::CompileChainProgram({code}, compiler::ChainCompileOptions{});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ir::ElementInstance inst(code, 5);
  ir::ChainExecutor exec(program.value(), {&inst});
  Message m = Message::MakeRequest(1, "M", {{"payload", Value(Bytes{1})}});
  Message resp = Message::MakeResponse(m, {{"payload", Value(Bytes{2})}});
  EXPECT_EQ(exec.Process(resp, 0).outcome, ProcessOutcome::kPass);
  // Fault is ON REQUEST: the response never entered the element.
  EXPECT_EQ(inst.processed(), 0u);
}

TEST(ChainExecutor, Fig5ChainMatchesInterpreterOnMixedKinds) {
  auto lowered = Lower(elements::Fig5ProgramSource());
  std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
      lowered.FindElement("Logging"), lowered.FindElement("Acl"),
      lowered.FindElement("Fault")};
  for (const auto& e : elements) ASSERT_NE(e, nullptr);

  auto program = compiler::CompileChainProgram(elements, {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  std::vector<std::unique_ptr<ir::ElementInstance>> interp;
  std::vector<std::unique_ptr<ir::ElementInstance>> compiled;
  std::vector<ir::ElementInstance*> raw;
  for (size_t i = 0; i < elements.size(); ++i) {
    interp.push_back(std::make_unique<ir::ElementInstance>(elements[i], i + 1));
    compiled.push_back(
        std::make_unique<ir::ElementInstance>(elements[i], i + 1));
    raw.push_back(compiled.back().get());
  }
  for (auto* set : {&interp, &compiled}) {
    rpc::Table* acl = (*set)[1]->FindTable("ac_tab");
    ASSERT_NE(acl, nullptr);
    ASSERT_TRUE(acl->Insert({Value("alice"), Value("W")}).ok());
    ASSERT_TRUE(acl->Insert({Value("bob"), Value("R")}).ok());
  }
  ir::ChainExecutor exec(program.value(), std::move(raw));

  // Reference semantics: walk the instances, honoring AppliesTo and
  // stopping at the first drop — exactly what EngineChain does.
  auto run_interp = [&](Message& m) {
    for (auto& inst : interp) {
      if (!inst->AppliesTo(m.kind())) continue;
      ir::ProcessResult r = inst->Process(m, 0);
      if (r.outcome != ProcessOutcome::kPass) return r;
    }
    return ir::ProcessResult::Pass();
  };

  Rng msgs(77);
  const char* users[] = {"alice", "bob", "mallory"};
  for (int i = 0; i < 400; ++i) {
    Message m1 = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"username", Value(std::string(users[msgs.NextBelow(3)]))},
         {"payload", Value(Bytes(1 + msgs.NextBelow(32), 0x11))}});
    if (msgs.NextBelow(4) == 0) {
      m1 = Message::MakeResponse(m1, {{"username", m1.GetFieldOrNull(
                                                       "username")},
                                      {"payload", Value(Bytes{9})}});
    }
    Message m2 = m1;
    ir::ProcessResult r1 = run_interp(m1);
    ir::ProcessResult r2 = exec.Process(m2, 0);
    ASSERT_EQ(r1.outcome, r2.outcome) << "message " << i;
    ASSERT_EQ(r1.abort_message, r2.abort_message) << "message " << i;
    ASSERT_EQ(m1.DebugString(), m2.DebugString()) << "message " << i;
  }
  for (size_t i = 0; i < interp.size(); ++i) {
    EXPECT_EQ(interp[i]->StateContentHash(), compiled[i]->StateContentHash());
    EXPECT_EQ(interp[i]->processed(), compiled[i]->processed());
    EXPECT_EQ(interp[i]->dropped(), compiled[i]->dropped());
  }
}

// --- Mesh-path deployment -------------------------------------------------------

TEST(ChainExecutor, RunsInsideMeshSidecar) {
  auto code = LowerNamed(std::string(elements::AclTableSql()) +
                             std::string(elements::AclSql()),
                         "Acl");
  auto program = compiler::CompileChainProgram({code}, {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  rpc::Schema schema;
  ASSERT_TRUE(schema.AddColumn({"username", rpc::ValueType::kText, false}).ok());
  ASSERT_TRUE(schema.AddColumn({"object_id", rpc::ValueType::kInt, false}).ok());
  ASSERT_TRUE(schema.AddColumn({"payload", rpc::ValueType::kBytes, false}).ok());

  stack::MeshConfig config;
  config.concurrency = 16;
  config.measured_requests = 2'000;
  config.warmup_requests = 200;
  config.request_schema = schema;
  config.make_request = core::MakeDefaultRequestFactory();
  stack::AdnChainConfig chain;
  chain.program = program.value();
  chain.elements = {code};
  chain.seed_state = [](stack::AdnChainFilter& filter) {
    rpc::Table* acl = filter.instance(0).FindTable("ac_tab");
    ASSERT_NE(acl, nullptr);
    // Half the default workload's users get write permission.
    ASSERT_TRUE(acl->Insert({Value("alice"), Value("W")}).ok());
    ASSERT_TRUE(acl->Insert({Value("carol"), Value("W")}).ok());
    ASSERT_TRUE(acl->Insert({Value("bob"), Value("R")}).ok());
  };
  config.adn_chain = std::move(chain);

  stack::MeshResult result = stack::RunMeshExperiment(config);
  EXPECT_EQ(result.stats.completed + result.stats.dropped, 2'200u);
  double drop_rate =
      static_cast<double>(result.stats.dropped) /
      static_cast<double>(result.stats.completed + result.stats.dropped);
  // alice + carol pass, bob + dave are denied by the compiled chain.
  EXPECT_NEAR(drop_rate, 0.5, 0.05);
}

// --- Migration invariance -------------------------------------------------------

std::shared_ptr<const ir::ElementIr> QuotaElement() {
  return LowerNamed(std::string(elements::QuotaTableSql()) +
                        std::string(elements::QuotaSql()),
                    "Quota");
}

void SeedQuota(ir::ElementInstance& inst) {
  rpc::Table* quota = inst.FindTable("quota");
  ASSERT_NE(quota, nullptr);
  for (int64_t u = 0; u < 4; ++u) {
    ASSERT_TRUE(
        quota->Insert({Value("u" + std::to_string(u)), Value(u + 3)}).ok());
  }
}

Message QuotaRequest(uint64_t id, Rng& rng) {
  return Message::MakeRequest(
      id, "M",
      {{"username", Value("u" + std::to_string(rng.NextBelow(5)))}});
}

TEST(Migration, SnapshotUnderCompiledExecutorReplaysIdentically) {
  auto code = QuotaElement();
  auto program = compiler::CompileElementProgram(*code);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  ir::ElementInstance original(code, 1);
  SeedQuota(original);
  ir::ChainExecutor exec(program.value(), {&original});

  Rng stream(12);
  std::vector<Message> first_half, second_half;
  for (uint64_t i = 0; i < 15; ++i) first_half.push_back(QuotaRequest(i, stream));
  for (uint64_t i = 15; i < 30; ++i)
    second_half.push_back(QuotaRequest(i, stream));

  for (Message& m : first_half) {
    Message copy = m;
    (void)exec.Process(copy, 0);
  }

  // Mid-stream migration: snapshot, restore into a fresh instance driven by
  // its own compiled executor, then replay the remaining stream on both.
  Bytes snapshot = original.SnapshotState();
  ir::ElementInstance restored(code, 99);
  ASSERT_TRUE(restored.RestoreState(snapshot).ok());
  EXPECT_EQ(restored.StateContentHash(), original.StateContentHash());
  ir::ChainExecutor restored_exec(program.value(), {&restored});

  for (Message& m : second_half) {
    Message m1 = m;
    Message m2 = m;
    ir::ProcessResult r1 = exec.Process(m1, 0);
    ir::ProcessResult r2 = restored_exec.Process(m2, 0);
    EXPECT_EQ(r1.outcome, r2.outcome);
    EXPECT_EQ(r1.abort_message, r2.abort_message);
    EXPECT_EQ(m1.DebugString(), m2.DebugString());
  }
  EXPECT_EQ(restored.StateContentHash(), original.StateContentHash());
}

TEST(Migration, SplitMergeRoundTripsUnderCompiledExecutor) {
  auto code = QuotaElement();
  auto program = compiler::CompileElementProgram(*code);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  ir::ElementInstance source(code, 1);
  SeedQuota(source);
  ir::ChainExecutor exec(program.value(), {&source});
  Rng stream(13);
  for (uint64_t i = 0; i < 20; ++i) {
    Message m = QuotaRequest(i, stream);
    (void)exec.Process(m, 0);
  }

  // Scale-out then scale-in: shards of the source merge back into an empty
  // instance and reproduce the exact state content.
  auto shards = source.SplitState(3);
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  ir::ElementInstance rejoined(code, 2);
  for (const Bytes& shard : *shards) {
    ASSERT_TRUE(rejoined.MergeState(shard).ok());
  }
  EXPECT_EQ(rejoined.StateContentHash(), source.StateContentHash());

  // Merging into a NON-empty instance (scale-in onto a live peer): both
  // orders of arriving at the same union must hash identically, and the
  // merged instance keeps working under the compiled executor.
  auto seed_extra = [](ir::ElementInstance& inst) {
    rpc::Table* quota = inst.FindTable("quota");
    ASSERT_NE(quota, nullptr);
    ASSERT_TRUE(quota->Insert({Value("w0"), Value(7)}).ok());
    ASSERT_TRUE(quota->Insert({Value("w1"), Value(1)}).ok());
  };
  ir::ElementInstance busy(code, 3);
  seed_extra(busy);
  for (const Bytes& shard : *shards) {
    ASSERT_TRUE(busy.MergeState(shard).ok());
  }
  ir::ElementInstance busy_twin(code, 4);
  seed_extra(busy_twin);
  ASSERT_TRUE(busy_twin.MergeState(source.SnapshotState()).ok());
  EXPECT_EQ(busy.StateContentHash(), busy_twin.StateContentHash());
  EXPECT_EQ(busy.FindTable("quota")->RowCount(),
            source.FindTable("quota")->RowCount() + 2);

  ir::ChainExecutor merged_exec(program.value(), {&busy});
  Message m = Message::MakeRequest(100, "M", {{"username", Value("w0")}});
  EXPECT_EQ(merged_exec.Process(m, 0).outcome, ProcessOutcome::kPass);
}

TEST(Migration, RestoreSwapsTablesWithoutDanglingExecutorHandles) {
  // The executor resolves table handles per call through the instance, so a
  // RestoreState that replaces the whole table vector mid-lifetime must be
  // transparent to an already-constructed executor.
  auto code = QuotaElement();
  auto program = compiler::CompileElementProgram(*code);
  ASSERT_TRUE(program.ok());
  ir::ElementInstance inst(code, 1);
  SeedQuota(inst);
  ir::ChainExecutor exec(program.value(), {&inst});
  Message warm = Message::MakeRequest(0, "M", {{"username", Value("u3")}});
  ASSERT_EQ(exec.Process(warm, 0).outcome, ProcessOutcome::kPass);

  ir::ElementInstance donor(code, 2);
  rpc::Table* quota = donor.FindTable("quota");
  ASSERT_NE(quota, nullptr);
  ASSERT_TRUE(quota->Insert({Value("only"), Value(1)}).ok());
  ASSERT_TRUE(inst.RestoreState(donor.SnapshotState()).ok());

  Message hit = Message::MakeRequest(1, "M", {{"username", Value("only")}});
  Message miss = Message::MakeRequest(2, "M", {{"username", Value("u3")}});
  EXPECT_EQ(exec.Process(hit, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(exec.Process(miss, 0).outcome, ProcessOutcome::kDropAbort);
}

}  // namespace
}  // namespace adn
