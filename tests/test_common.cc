// Unit tests: status/result plumbing, byte codecs, strings, RNG, and the
// real compression/encryption codecs.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace adn {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesError) {
  Status s(ErrorCode::kNotFound, "nope");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: nope");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Error(ErrorCode::kInvalidArgument, "not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  ADN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(DoublePositive(21).value(), 42);
  EXPECT_FALSE(DoublePositive(-1).ok());
  EXPECT_EQ(DoublePositive(-1).error().code(), ErrorCode::kInvalidArgument);
}

TEST(Result, ValueOr) {
  EXPECT_EQ(ParsePositive(-5).value_or(7), 7);
  EXPECT_EQ(ParsePositive(5).value_or(7), 5);
}

// --- ByteWriter / ByteReader ---------------------------------------------------

TEST(Bytes, FixedWidthRoundTrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteF64(3.25);

  ByteReader r(buf);
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadF64().value(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  Bytes buf;
  ByteWriter w(buf);
  w.WriteVarint(GetParam());
  ByteReader r(buf);
  EXPECT_EQ(r.ReadVarint().value(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           16383ull, 16384ull, 0xFFFFFFFFull,
                                           0xFFFFFFFFFFFFFFFFull));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, EncodesAndDecodes) {
  Bytes buf;
  ByteWriter w(buf);
  w.WriteSignedVarint(GetParam());
  ByteReader r(buf);
  EXPECT_EQ(r.ReadSignedVarint().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, SignedVarintRoundTrip,
    ::testing::Values(int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                      int64_t{63}, int64_t{INT64_MAX}, int64_t{INT64_MIN}));

TEST(Bytes, SmallSignedValuesStaySmall) {
  Bytes buf;
  ByteWriter w(buf);
  w.WriteSignedVarint(-3);
  EXPECT_EQ(buf.size(), 1u);  // zig-zag keeps -3 in one byte
}

TEST(Bytes, ReaderUnderflowIsError) {
  Bytes buf = {0x01};
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadU32().ok());
  // Failed read leaves the cursor usable for shorter reads.
  EXPECT_TRUE(ByteReader(buf).ReadU8().ok());
}

TEST(Bytes, TruncatedVarintIsError) {
  Bytes buf = {0x80, 0x80};  // continuation bits never end
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(Bytes, OverlongVarintIsError) {
  Bytes buf(11, 0x80);
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(Bytes, LengthPrefixedRoundTrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.WriteString("hello");
  w.WriteString("");
  ByteReader r(buf);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), "");
}

TEST(Bytes, LengthPrefixExceedingBufferIsError) {
  Bytes buf;
  ByteWriter w(buf);
  w.WriteVarint(1000);  // claims 1000 bytes, provides none
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadLengthPrefixed().ok());
}

TEST(Bytes, PatchU32) {
  Bytes buf = {0, 0, 0, 0, 0xFF};
  ByteWriter w(buf);
  w.PatchU32(0, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(buf[4], 0xFF);
}

// --- Strings ---------------------------------------------------------------------

TEST(Strings, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(TrimString("  x \t\n"), "x");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreAsciiCase("input", "INPUT"));
  EXPECT_FALSE(EqualsIgnoreAsciiCase("input", "inputs"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("x-user", "x-"));
  EXPECT_FALSE(StartsWith("x", "x-"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "file.cc"));
}

TEST(Strings, Fnv1aIsStable) {
  // Pinned value: the LB hash must not drift across builds, or live
  // migrations would re-shard traffic.
  EXPECT_EQ(Fnv1a64("alice"), Fnv1a64("alice"));
  EXPECT_NE(Fnv1a64("alice"), Fnv1a64("alicf"));
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
}

// --- Rng ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    (void)c.NextU64();
  }
  EXPECT_NE(Rng(42).NextU64(), Rng(43).NextU64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng rng(1234);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.05)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.05, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(99);
  double total = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) total += rng.NextExponential(10.0);
  EXPECT_NEAR(total / kSamples, 10.0, 0.3);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// --- Compression -----------------------------------------------------------------

class CompressRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(CompressRoundTrip, LosslessAcrossSizes) {
  Rng rng(GetParam() + 1);
  Bytes data(GetParam());
  // Mixed entropy: half repetitive, half random.
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i < data.size() / 2 ? static_cast<uint8_t>(i % 7)
                                  : static_cast<uint8_t>(rng.NextBelow(256));
  }
  Bytes packed = CompressBytes(data);
  auto restored = DecompressBytes(packed);
  ASSERT_TRUE(restored.ok()) << restored.error().ToString();
  EXPECT_EQ(restored.value(), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressRoundTrip,
                         ::testing::Values(0, 1, 3, 4, 63, 64, 255, 1024,
                                           4096, 65536, 200000));

TEST(Compress, RepetitiveDataShrinks) {
  Bytes data(10000, 'a');
  Bytes packed = CompressBytes(data);
  EXPECT_LT(packed.size(), data.size() / 10);
}

TEST(Compress, RandomDataDoesNotExplode) {
  Rng rng(3);
  Bytes data(10000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextBelow(256));
  Bytes packed = CompressBytes(data);
  // Literal-run framing adds only token overhead.
  EXPECT_LT(packed.size(), data.size() + data.size() / 8 + 16);
}

TEST(Compress, CorruptStreamRejected) {
  Bytes data(1000, 'x');
  Bytes packed = CompressBytes(data);
  packed[packed.size() / 2] ^= 0xFF;
  auto restored = DecompressBytes(packed);
  // Either a parse error or a size mismatch — never a silent wrong answer.
  if (restored.ok()) {
    EXPECT_NE(restored.value(), data);
  }
}

TEST(Compress, TruncatedStreamRejected) {
  Bytes packed = CompressBytes(Bytes(500, 'y'));
  packed.resize(packed.size() / 2);
  EXPECT_FALSE(DecompressBytes(packed).ok());
}

TEST(Compress, BadTokenRejected) {
  Bytes stream;
  ByteWriter w(stream);
  w.WriteVarint(10);
  w.WriteU8(0x7F);  // unknown token tag
  EXPECT_FALSE(DecompressBytes(stream).ok());
}

// --- Encryption ------------------------------------------------------------------

TEST(Encrypt, RoundTrip) {
  Bytes plain = ToBytes("attack at dawn, bring snacks");
  Bytes cipher = EncryptBytes(plain, "key-1", 777);
  auto restored = DecryptBytes(cipher, "key-1");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), plain);
}

TEST(Encrypt, WrongKeyGarbles) {
  Bytes plain = ToBytes("attack at dawn");
  Bytes cipher = EncryptBytes(plain, "key-1", 777);
  auto restored = DecryptBytes(cipher, "key-2");
  ASSERT_TRUE(restored.ok());  // stream cipher: decrypts to wrong bytes
  EXPECT_NE(restored.value(), plain);
}

TEST(Encrypt, DifferentNoncesDifferentCiphertext) {
  Bytes plain = ToBytes("same message");
  EXPECT_NE(EncryptBytes(plain, "k", 1), EncryptBytes(plain, "k", 2));
}

TEST(Encrypt, CiphertextDiffersFromPlaintext) {
  Bytes plain(64, 0);
  Bytes cipher = EncryptBytes(plain, "k", 9);
  EXPECT_EQ(cipher.size(), plain.size() + 8);  // nonce prefix
  bool any_diff = false;
  for (size_t i = 0; i < plain.size(); ++i) {
    any_diff |= cipher[i + 8] != plain[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Encrypt, TooShortCiphertextRejected) {
  Bytes tiny = {1, 2, 3};
  EXPECT_FALSE(DecryptBytes(tiny, "k").ok());
}

// --- CRC32C -----------------------------------------------------------------------

TEST(Crc32c, KnownVector) {
  // RFC 3720 test vector: 32 bytes of zeros.
  Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, DetectsBitFlip) {
  Bytes data = ToBytes("123456789");
  EXPECT_EQ(Crc32c(data), 0xE3069283u);  // canonical check value
  data[4] ^= 1;
  EXPECT_NE(Crc32c(data), 0xE3069283u);
}

}  // namespace
}  // namespace adn
