// mRPC substrate tests: SPSC ring, engine chains, filter operators, and the
// ADN data path driver.
#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/filter_ops.h"
#include "elements/handcoded.h"
#include "elements/library.h"
#include "mrpc/adn_path.h"
#include "mrpc/ring.h"

namespace adn::mrpc {
namespace {

using rpc::Message;
using rpc::Value;

// --- SpscRing -----------------------------------------------------------------

TEST(SpscRing, PushPopFifo) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPop().value(), 2);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.TryPush(3));
  (void)ring.TryPop();
  EXPECT_TRUE(ring.TryPush(3));
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_EQ(ring.TryPop().value(), i);
  }
  EXPECT_EQ(ring.enqueued(), 1000u);
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(7)));
  auto out = ring.TryPop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

// --- EngineChain ----------------------------------------------------------------

std::shared_ptr<const ir::ElementIr> LowerElement(const std::string& source) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program->elements[0];
}

TEST(EngineChain, RunsStagesInOrderAndStopsAtDrop) {
  EngineChain chain;
  chain.AddStage(std::make_unique<GeneratedStage>(
      LowerElement(
          "ELEMENT Add { INPUT (x INT); SELECT *, x + 1 AS x FROM input; }"),
      1));
  chain.AddStage(std::make_unique<GeneratedStage>(
      LowerElement(
          "ELEMENT Gate { INPUT (x INT); SELECT * FROM input WHERE x < 10; }"),
      2));
  chain.AddStage(std::make_unique<GeneratedStage>(
      LowerElement(
          "ELEMENT Add2 { INPUT (x INT); SELECT *, x * 2 AS x FROM input; }"),
      3));

  Message pass = Message::MakeRequest(1, "M", {{"x", Value(3)}});
  EXPECT_EQ(chain.Process(pass, 0).outcome, ir::ProcessOutcome::kPass);
  EXPECT_EQ(pass.GetFieldOrNull("x").AsInt(), 8);  // (3+1)*2

  Message blocked = Message::MakeRequest(2, "M", {{"x", Value(50)}});
  EXPECT_EQ(chain.Process(blocked, 0).outcome,
            ir::ProcessOutcome::kDropAbort);
  EXPECT_EQ(blocked.GetFieldOrNull("x").AsInt(), 51);  // stage 3 never ran

  EXPECT_EQ(chain.processed(), 2u);
  EXPECT_EQ(chain.dropped(), 1u);
}

TEST(EngineChain, SkipsInapplicableDirections) {
  EngineChain chain;
  chain.AddStage(std::make_unique<GeneratedStage>(
      LowerElement("ELEMENT ReqOnly ON REQUEST { INPUT (x INT); "
                   "SELECT *, x + 1 AS x FROM input; }"),
      1));
  Message req = Message::MakeRequest(1, "M", {{"x", Value(0)}});
  Message resp = Message::MakeResponse(req, {{"x", Value(0)}});
  (void)chain.Process(req, 0);
  (void)chain.Process(resp, 0);
  EXPECT_EQ(req.GetFieldOrNull("x").AsInt(), 1);
  EXPECT_EQ(resp.GetFieldOrNull("x").AsInt(), 0);  // untouched
}

TEST(EngineChain, CostSumsApplicableStages) {
  const auto& model = sim::CostModel::Default();
  EngineChain chain;
  chain.AddStage(std::make_unique<GeneratedStage>(
      LowerElement("ELEMENT A ON REQUEST { INPUT (x INT); "
                   "SELECT * FROM input WHERE x > 0; }"),
      1));
  double req_cost = chain.CostNs(model, rpc::MessageKind::kRequest, 0);
  double resp_cost = chain.CostNs(model, rpc::MessageKind::kResponse, 0);
  EXPECT_GT(req_cost, resp_cost);  // response pays dispatch only
  EXPECT_DOUBLE_EQ(resp_cost,
                   static_cast<double>(model.mrpc_engine_dispatch_ns));
}

// --- Filter operators --------------------------------------------------------------

TEST(RateLimit, EnforcesRate) {
  elements::RateLimitOp limiter(/*rps=*/1000, /*burst=*/10);
  Message m = Message::MakeRequest(1, "M", {});
  int passed = 0;
  // 10k requests in one simulated second => ~1000 pass + burst.
  for (int i = 0; i < 10'000; ++i) {
    int64_t now_ns = i * 100'000;  // 10 per ms
    if (limiter.Process(m, now_ns).outcome == ir::ProcessOutcome::kPass) {
      ++passed;
    }
  }
  EXPECT_NEAR(passed, 1010, 15);
}

TEST(RateLimit, BurstAllowsSpikes) {
  elements::RateLimitOp limiter(/*rps=*/10, /*burst=*/5);
  Message m = Message::MakeRequest(1, "M", {});
  int passed = 0;
  for (int i = 0; i < 8; ++i) {
    if (limiter.Process(m, 0).outcome == ir::ProcessOutcome::kPass) ++passed;
  }
  EXPECT_EQ(passed, 5);  // bucket depth
}

TEST(Dedup, DropsDuplicateIdsSilently) {
  elements::DedupOp dedup(16);
  Message a = Message::MakeRequest(7, "M", {});
  Message b = Message::MakeRequest(7, "M", {});
  Message c = Message::MakeRequest(8, "M", {});
  EXPECT_EQ(dedup.Process(a, 0).outcome, ir::ProcessOutcome::kPass);
  EXPECT_EQ(dedup.Process(b, 0).outcome, ir::ProcessOutcome::kDropSilent);
  EXPECT_EQ(dedup.Process(c, 0).outcome, ir::ProcessOutcome::kPass);
}

TEST(Dedup, WindowEvictsOldEntries) {
  elements::DedupOp dedup(2);
  Message m1 = Message::MakeRequest(1, "M", {});
  Message m2 = Message::MakeRequest(2, "M", {});
  Message m3 = Message::MakeRequest(3, "M", {});
  Message m1_again = Message::MakeRequest(1, "M", {});
  (void)dedup.Process(m1, 0);
  (void)dedup.Process(m2, 0);
  (void)dedup.Process(m3, 0);  // evicts id 1
  EXPECT_EQ(dedup.Process(m1_again, 0).outcome, ir::ProcessOutcome::kPass);
}

TEST(CircuitBreaker, OpensOnErrorsAndCoolsDown) {
  elements::CircuitBreakerOp breaker(/*error_threshold=*/0.5, /*window=*/4,
                                     /*cooldown_ns=*/1'000'000);
  Message req = Message::MakeRequest(1, "M", {});
  // Feed 4 outcomes, 3 errors -> opens.
  breaker.RecordOutcome(true, 0);
  breaker.RecordOutcome(true, 0);
  breaker.RecordOutcome(false, 0);
  breaker.RecordOutcome(true, 0);
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.Process(req, 100).outcome,
            ir::ProcessOutcome::kDropAbort);
  // After the cooldown, half-open lets a probe through.
  EXPECT_EQ(breaker.Process(req, 2'000'000).outcome,
            ir::ProcessOutcome::kPass);
}

TEST(FilterFactory, BindsKnownOps) {
  ir::FilterIr limit{"rate_limit", {{"rps", Value(100)}}};
  EXPECT_TRUE(elements::MakeFilterStage(limit).ok());
  ir::FilterIr dedup{"dedup", {}};
  EXPECT_TRUE(elements::MakeFilterStage(dedup).ok());
  ir::FilterIr retry{"retry", {{"max_attempts", Value(3)}}};
  EXPECT_FALSE(elements::MakeFilterStage(retry).ok());  // client-side op
  ir::FilterIr nope{"warp", {}};
  EXPECT_FALSE(elements::MakeFilterStage(nope).ok());
}

// --- AdnPath driver ------------------------------------------------------------------

AdnPathConfig BaseConfig() {
  AdnPathConfig config;
  config.concurrency = 16;
  config.measured_requests = 2'000;
  config.warmup_requests = 200;
  config.make_request = core::MakeDefaultRequestFactory();
  config.header.fields = {
      {"username", rpc::ValueType::kText, false},
      {"object_id", rpc::ValueType::kInt, false},
      {"payload", rpc::ValueType::kBytes, false},
  };
  return config;
}

TEST(AdnPath, CompletesAllRequests) {
  AdnPathConfig config = BaseConfig();
  config.stages.push_back(
      {Site::kClientEngine,
       [] { return std::make_unique<elements::HandLogging>(); }});
  auto result = RunAdnPathExperiment(config);
  EXPECT_EQ(result.stats.completed, 2'200u);
  EXPECT_EQ(result.stats.dropped, 0u);
  EXPECT_GT(result.stats.throughput_krps, 10.0);
  EXPECT_GT(result.wire_bytes_per_request, 20.0);
}

TEST(AdnPath, AbortsAccountedAsDrops) {
  AdnPathConfig config = BaseConfig();
  config.stages.push_back(
      {Site::kClientEngine,
       [] { return std::make_unique<elements::HandFault>(0.20, 9); }});
  auto result = RunAdnPathExperiment(config);
  double drop_rate =
      static_cast<double>(result.stats.dropped) /
      static_cast<double>(result.stats.completed + result.stats.dropped);
  EXPECT_NEAR(drop_rate, 0.20, 0.04);
}

TEST(AdnPath, OffloadedSitesReduceHostCpu) {
  // Same stage on the engine vs on the (receiver) SmartNIC: host CPU per
  // RPC must drop when the work leaves the host.
  AdnPathConfig host = BaseConfig();
  host.stages.push_back(
      {Site::kClientEngine,
       [] { return std::make_unique<elements::HandLogging>(); }});
  AdnPathConfig nic = BaseConfig();
  nic.stages.push_back(
      {Site::kServerNic,
       [] { return std::make_unique<elements::HandLogging>(); }});
  auto host_result = RunAdnPathExperiment(host);
  auto nic_result = RunAdnPathExperiment(nic);
  EXPECT_LT(nic_result.host_cpu_per_rpc_ns, host_result.host_cpu_per_rpc_ns);
}

TEST(AdnPath, InAppSkipsEngineHops) {
  AdnPathConfig with_engine = BaseConfig();
  with_engine.concurrency = 1;
  AdnPathConfig in_app = BaseConfig();
  in_app.concurrency = 1;
  in_app.client_engine_present = false;
  in_app.server_engine_present = false;
  auto engine_result = RunAdnPathExperiment(with_engine);
  auto app_result = RunAdnPathExperiment(in_app);
  EXPECT_LT(app_result.stats.mean_latency_us,
            engine_result.stats.mean_latency_us);
}

TEST(AdnPath, WiderEngineRaisesThroughput) {
  AdnPathConfig narrow = BaseConfig();
  narrow.concurrency = 64;
  narrow.make_request = core::MakeDefaultRequestFactory(16 * 1024);
  narrow.stages.push_back(
      {Site::kClientEngine,
       [] { return std::make_unique<elements::HandCompress>(true); }});
  AdnPathConfig wide = narrow;
  wide.stages.clear();
  wide.stages.push_back(
      {Site::kClientEngine,
       [] { return std::make_unique<elements::HandCompress>(true); }});
  wide.client_engine_width = 4;
  auto narrow_result = RunAdnPathExperiment(narrow);
  auto wide_result = RunAdnPathExperiment(wide);
  EXPECT_GT(wide_result.stats.throughput_krps,
            narrow_result.stats.throughput_krps * 1.5);
}

TEST(AdnPath, HeaderFieldsLimitWhatServerSees) {
  // Header carries only object_id; a server-side stage that reads username
  // must see NULL and drop.
  AdnPathConfig config = BaseConfig();
  config.header.fields = {{"object_id", rpc::ValueType::kInt, false}};
  config.stages.push_back(
      {Site::kServerEngine, [] {
         return std::make_unique<elements::HandAcl>(
             std::unordered_map<std::string, char>{{"alice", 'W'}});
       }});
  auto result = RunAdnPathExperiment(config);
  EXPECT_EQ(result.stats.completed, 0u);  // every request denied
  EXPECT_EQ(result.stats.dropped, 2'200u);
}

}  // namespace
}  // namespace adn::mrpc
