// Unit + property tests for the relational element state (rpc::Table):
// upsert semantics, key lookup, snapshot/restore, split/merge invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rpc/table.h"

namespace adn::rpc {
namespace {

Schema AclSchema() {
  Schema s;
  (void)s.AddColumn({"username", ValueType::kText, true});
  (void)s.AddColumn({"permission", ValueType::kText, false});
  return s;
}

Schema LogSchema() {  // no primary key
  Schema s;
  (void)s.AddColumn({"rpc", ValueType::kInt, false});
  (void)s.AddColumn({"bytes", ValueType::kInt, false});
  return s;
}

TEST(Table, InsertAndLookup) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(t.Insert({Value("bob"), Value("R")}).ok());
  EXPECT_EQ(t.RowCount(), 2u);
  auto rows = t.LookupByKey({Value("alice")});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[1].AsText(), "W");
  EXPECT_TRUE(t.LookupByKey({Value("nobody")}).empty());
}

TEST(Table, PrimaryKeyUpsertReplaces) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("R")}).ok());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("W")}).ok());
  EXPECT_EQ(t.RowCount(), 1u);
  EXPECT_EQ((*t.LookupByKey({Value("alice")})[0])[1].AsText(), "W");
}

TEST(Table, NoPrimaryKeyAppends) {
  Table t("log", LogSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(t.Insert({Value(1), Value(10)}).ok());  // duplicate row fine
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(Table, ArityAndTypeChecked) {
  Table t("ac", AclSchema());
  EXPECT_FALSE(t.Insert({Value("alice")}).ok());                    // arity
  EXPECT_FALSE(t.Insert({Value(1), Value("W")}).ok());              // type
  EXPECT_TRUE(t.Insert({Value("x"), Value::Null()}).ok());          // NULL ok
}

TEST(Table, EraseWhereReindexes) {
  Table t("ac", AclSchema());
  for (const char* u : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(t.Insert({Value(std::string(u)), Value("W")}).ok());
  }
  size_t erased =
      t.EraseWhere([](const Row& r) { return r[0].AsText() < "c"; });
  EXPECT_EQ(erased, 2u);
  EXPECT_EQ(t.RowCount(), 2u);
  // Index still coherent after compaction.
  EXPECT_EQ(t.LookupByKey({Value("c")}).size(), 1u);
  EXPECT_TRUE(t.LookupByKey({Value("a")}).empty());
}

TEST(Table, FindFirst) {
  Table t("log", LogSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value(20)}).ok());
  const Row* row =
      t.FindFirst([](const Row& r) { return r[1].AsInt() > 15; });
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].AsInt(), 2);
  EXPECT_EQ(t.FindFirst([](const Row&) { return false; }), nullptr);
}

TEST(Table, SnapshotRestoreRoundTrip) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(t.Insert({Value("bob"), Value::Null()}).ok());
  Bytes snap = t.Snapshot();
  auto restored = Table::Restore(snap);
  ASSERT_TRUE(restored.ok()) << restored.error().ToString();
  EXPECT_EQ(restored->name(), "ac");
  EXPECT_EQ(restored->RowCount(), 2u);
  EXPECT_EQ(restored->ContentHash(), t.ContentHash());
  // Restored tables keep working (index rebuilt).
  EXPECT_EQ(restored->LookupByKey({Value("alice")}).size(), 1u);
}

TEST(Table, RestoreRejectsGarbage) {
  Bytes garbage = {0xFF, 0x00, 0x13};
  EXPECT_FALSE(Table::Restore(garbage).ok());
}

TEST(Table, MergeRequiresSameSchema) {
  Table a("ac", AclSchema());
  Table b("log", LogSchema());
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(Table, MergeUpsertsOnKey) {
  Table a("ac", AclSchema());
  Table b("ac", AclSchema());
  ASSERT_TRUE(a.Insert({Value("alice"), Value("R")}).ok());
  ASSERT_TRUE(b.Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(b.Insert({Value("bob"), Value("R")}).ok());
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.RowCount(), 2u);
  EXPECT_EQ((*a.LookupByKey({Value("alice")})[0])[1].AsText(), "W");
}

// Property: splitting into k shards and merging back preserves the exact
// content (hash-equal), for many table sizes and shard counts.
class SplitMergeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitMergeProperty, RoundTripsContent) {
  auto [rows, shards] = GetParam();
  Table t("ac", AclSchema());
  Rng rng(static_cast<uint64_t>(rows * 31 + shards));
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(t.Insert({Value("user" + std::to_string(i)),
                          Value(rng.NextBool(0.5) ? "W" : "R")})
                    .ok());
  }
  auto split = t.SplitByKeyHash(static_cast<size_t>(shards));
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), static_cast<size_t>(shards));

  // Shards partition the rows.
  size_t total = 0;
  uint64_t xor_hash = 0;
  for (const Table& shard : split.value()) {
    total += shard.RowCount();
    xor_hash ^= shard.ContentHash();
  }
  EXPECT_EQ(total, t.RowCount());
  EXPECT_EQ(xor_hash, t.ContentHash());

  // Merging back equals the original.
  Table merged("ac", AclSchema());
  for (const Table& shard : split.value()) {
    ASSERT_TRUE(merged.MergeFrom(shard).ok());
  }
  EXPECT_EQ(merged.ContentHash(), t.ContentHash());
  EXPECT_EQ(merged.RowCount(), t.RowCount());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SplitMergeProperty,
    ::testing::Combine(::testing::Values(0, 1, 7, 64, 513),
                       ::testing::Values(1, 2, 3, 8)));

TEST(Table, SplitIntoZeroShardsRejected) {
  Table t("ac", AclSchema());
  EXPECT_FALSE(t.SplitByKeyHash(0).ok());
}

TEST(Table, SplitIsDisjointByKey) {
  Table t("ac", AclSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t.Insert({Value("u" + std::to_string(i)), Value("W")}).ok());
  }
  auto split = t.SplitByKeyHash(4);
  ASSERT_TRUE(split.ok());
  // Any given key appears in exactly one shard.
  for (int i = 0; i < 100; ++i) {
    int hits = 0;
    for (const Table& shard : split.value()) {
      hits += static_cast<int>(
          shard.LookupByKey({Value("u" + std::to_string(i))}).size());
    }
    EXPECT_EQ(hits, 1) << "key u" << i;
  }
}

TEST(Table, ContentHashIsOrderInsensitive) {
  Table a("log", LogSchema());
  Table b("log", LogSchema());
  ASSERT_TRUE(a.Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(a.Insert({Value(2), Value(20)}).ok());
  ASSERT_TRUE(b.Insert({Value(2), Value(20)}).ok());
  ASSERT_TRUE(b.Insert({Value(1), Value(10)}).ok());
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
}

// --- Key-slot slices (live migration; docs/RECONFIG.md) --------------------

TEST(Table, KeyIntrospection) {
  Table keyed("ac", AclSchema());
  ASSERT_TRUE(keyed.Insert({Value("alice"), Value("W")}).ok());
  EXPECT_TRUE(keyed.HasPrimaryKey());
  EXPECT_EQ(keyed.RowKeyHash(keyed.rows()[0]), HashSingleKey(Value("alice")));
  const Row key = keyed.KeyOf(keyed.rows()[0]);
  ASSERT_EQ(key.size(), 1u);
  EXPECT_EQ(key[0].AsText(), "alice");

  Table log("log", LogSchema());
  ASSERT_TRUE(log.Insert({Value(1), Value(10)}).ok());
  EXPECT_FALSE(log.HasPrimaryKey());
  EXPECT_TRUE(log.KeyOf(log.rows()[0]).empty());
}

TEST(Table, EraseByKeyRemovesExactlyThatRow) {
  Table t("ac", AclSchema());
  for (const char* u : {"a", "b", "c"}) {
    ASSERT_TRUE(t.Insert({Value(u), Value("W")}).ok());
  }
  EXPECT_EQ(t.EraseByKey({Value("b")}), 1u);
  EXPECT_EQ(t.EraseByKey({Value("b")}), 0u);  // already gone
  EXPECT_EQ(t.RowCount(), 2u);
  EXPECT_NE(t.LookupSingleKey(Value("a")), nullptr);
  EXPECT_EQ(t.LookupSingleKey(Value("b")), nullptr);
  EXPECT_NE(t.LookupSingleKey(Value("c")), nullptr);

  Table log("log", LogSchema());
  ASSERT_TRUE(log.Insert({Value(1), Value(10)}).ok());
  EXPECT_EQ(log.EraseByKey({Value(1)}), 0u);  // keyless: never matches
}

TEST(Table, SliceAndEraseKeySlotPartition) {
  constexpr size_t kSlots = 16;
  Table t("ac", AclSchema());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        t.Insert({Value("user" + std::to_string(i)), Value("W")}).ok());
  }
  const uint64_t original = t.ContentHash();
  size_t sliced_total = 0;
  uint64_t xored = 0;
  for (size_t slot = 0; slot < kSlots; ++slot) {
    Table slice = t.SliceByKeySlot(slot, kSlots);
    for (const Row& row : slice.rows()) {
      EXPECT_EQ(t.RowKeyHash(row) % kSlots, slot);
    }
    sliced_total += slice.RowCount();
    xored ^= slice.ContentHash();
  }
  EXPECT_EQ(sliced_total, 200u);
  EXPECT_EQ(xored, original);  // slices partition the content hash

  // Erasing a slot removes exactly what its slice held.
  const size_t slot3 = t.SliceByKeySlot(3, kSlots).RowCount();
  EXPECT_EQ(t.EraseKeySlot(3, kSlots), slot3);
  EXPECT_EQ(t.RowCount(), 200u - slot3);
  EXPECT_EQ(t.SliceByKeySlot(3, kSlots).RowCount(), 0u);
}

TEST(Table, SplitByKeySlotAgreesWithSlotRouter) {
  // shard = (key hash % num_slots) % shards — the EnginePool routing
  // function. Every row must land on the shard its messages route to.
  constexpr size_t kSlots = 64;
  constexpr size_t kShards = 3;
  Table t("ac", AclSchema());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(
        t.Insert({Value("user" + std::to_string(i)), Value("R")}).ok());
  }
  auto shards = t.SplitByKeySlot(kShards, kSlots);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), kShards);
  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    for (const Row& row : (*shards)[s].rows()) {
      EXPECT_EQ(t.RowKeyHash(row) % kSlots % kShards, s);
    }
    total += (*shards)[s].RowCount();
  }
  EXPECT_EQ(total, 150u);
  EXPECT_FALSE(t.SplitByKeySlot(0, kSlots).ok());
}

TEST(Table, ClearEmptiesAndKeepsWorking) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("a"), Value("W")}).ok());
  t.Clear();
  EXPECT_TRUE(t.empty());
  ASSERT_TRUE(t.Insert({Value("b"), Value("R")}).ok());
  EXPECT_EQ(t.LookupByKey({Value("b")}).size(), 1u);
}

}  // namespace
}  // namespace adn::rpc
