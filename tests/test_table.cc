// Unit + property tests for the relational element state (rpc::Table):
// upsert semantics, key lookup, snapshot/restore, split/merge invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rpc/table.h"

namespace adn::rpc {
namespace {

Schema AclSchema() {
  Schema s;
  (void)s.AddColumn({"username", ValueType::kText, true});
  (void)s.AddColumn({"permission", ValueType::kText, false});
  return s;
}

Schema LogSchema() {  // no primary key
  Schema s;
  (void)s.AddColumn({"rpc", ValueType::kInt, false});
  (void)s.AddColumn({"bytes", ValueType::kInt, false});
  return s;
}

TEST(Table, InsertAndLookup) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(t.Insert({Value("bob"), Value("R")}).ok());
  EXPECT_EQ(t.RowCount(), 2u);
  auto rows = t.LookupByKey({Value("alice")});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rows[0])[1].AsText(), "W");
  EXPECT_TRUE(t.LookupByKey({Value("nobody")}).empty());
}

TEST(Table, PrimaryKeyUpsertReplaces) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("R")}).ok());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("W")}).ok());
  EXPECT_EQ(t.RowCount(), 1u);
  EXPECT_EQ((*t.LookupByKey({Value("alice")})[0])[1].AsText(), "W");
}

TEST(Table, NoPrimaryKeyAppends) {
  Table t("log", LogSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(t.Insert({Value(1), Value(10)}).ok());  // duplicate row fine
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(Table, ArityAndTypeChecked) {
  Table t("ac", AclSchema());
  EXPECT_FALSE(t.Insert({Value("alice")}).ok());                    // arity
  EXPECT_FALSE(t.Insert({Value(1), Value("W")}).ok());              // type
  EXPECT_TRUE(t.Insert({Value("x"), Value::Null()}).ok());          // NULL ok
}

TEST(Table, EraseWhereReindexes) {
  Table t("ac", AclSchema());
  for (const char* u : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(t.Insert({Value(std::string(u)), Value("W")}).ok());
  }
  size_t erased =
      t.EraseWhere([](const Row& r) { return r[0].AsText() < "c"; });
  EXPECT_EQ(erased, 2u);
  EXPECT_EQ(t.RowCount(), 2u);
  // Index still coherent after compaction.
  EXPECT_EQ(t.LookupByKey({Value("c")}).size(), 1u);
  EXPECT_TRUE(t.LookupByKey({Value("a")}).empty());
}

TEST(Table, FindFirst) {
  Table t("log", LogSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value(20)}).ok());
  const Row* row =
      t.FindFirst([](const Row& r) { return r[1].AsInt() > 15; });
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].AsInt(), 2);
  EXPECT_EQ(t.FindFirst([](const Row&) { return false; }), nullptr);
}

TEST(Table, SnapshotRestoreRoundTrip) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(t.Insert({Value("bob"), Value::Null()}).ok());
  Bytes snap = t.Snapshot();
  auto restored = Table::Restore(snap);
  ASSERT_TRUE(restored.ok()) << restored.error().ToString();
  EXPECT_EQ(restored->name(), "ac");
  EXPECT_EQ(restored->RowCount(), 2u);
  EXPECT_EQ(restored->ContentHash(), t.ContentHash());
  // Restored tables keep working (index rebuilt).
  EXPECT_EQ(restored->LookupByKey({Value("alice")}).size(), 1u);
}

TEST(Table, RestoreRejectsGarbage) {
  Bytes garbage = {0xFF, 0x00, 0x13};
  EXPECT_FALSE(Table::Restore(garbage).ok());
}

TEST(Table, MergeRequiresSameSchema) {
  Table a("ac", AclSchema());
  Table b("log", LogSchema());
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(Table, MergeUpsertsOnKey) {
  Table a("ac", AclSchema());
  Table b("ac", AclSchema());
  ASSERT_TRUE(a.Insert({Value("alice"), Value("R")}).ok());
  ASSERT_TRUE(b.Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(b.Insert({Value("bob"), Value("R")}).ok());
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.RowCount(), 2u);
  EXPECT_EQ((*a.LookupByKey({Value("alice")})[0])[1].AsText(), "W");
}

// Property: splitting into k shards and merging back preserves the exact
// content (hash-equal), for many table sizes and shard counts.
class SplitMergeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitMergeProperty, RoundTripsContent) {
  auto [rows, shards] = GetParam();
  Table t("ac", AclSchema());
  Rng rng(static_cast<uint64_t>(rows * 31 + shards));
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(t.Insert({Value("user" + std::to_string(i)),
                          Value(rng.NextBool(0.5) ? "W" : "R")})
                    .ok());
  }
  auto split = t.SplitByKeyHash(static_cast<size_t>(shards));
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->size(), static_cast<size_t>(shards));

  // Shards partition the rows.
  size_t total = 0;
  uint64_t xor_hash = 0;
  for (const Table& shard : split.value()) {
    total += shard.RowCount();
    xor_hash ^= shard.ContentHash();
  }
  EXPECT_EQ(total, t.RowCount());
  EXPECT_EQ(xor_hash, t.ContentHash());

  // Merging back equals the original.
  Table merged("ac", AclSchema());
  for (const Table& shard : split.value()) {
    ASSERT_TRUE(merged.MergeFrom(shard).ok());
  }
  EXPECT_EQ(merged.ContentHash(), t.ContentHash());
  EXPECT_EQ(merged.RowCount(), t.RowCount());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SplitMergeProperty,
    ::testing::Combine(::testing::Values(0, 1, 7, 64, 513),
                       ::testing::Values(1, 2, 3, 8)));

TEST(Table, SplitIntoZeroShardsRejected) {
  Table t("ac", AclSchema());
  EXPECT_FALSE(t.SplitByKeyHash(0).ok());
}

TEST(Table, SplitIsDisjointByKey) {
  Table t("ac", AclSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t.Insert({Value("u" + std::to_string(i)), Value("W")}).ok());
  }
  auto split = t.SplitByKeyHash(4);
  ASSERT_TRUE(split.ok());
  // Any given key appears in exactly one shard.
  for (int i = 0; i < 100; ++i) {
    int hits = 0;
    for (const Table& shard : split.value()) {
      hits += static_cast<int>(
          shard.LookupByKey({Value("u" + std::to_string(i))}).size());
    }
    EXPECT_EQ(hits, 1) << "key u" << i;
  }
}

TEST(Table, ContentHashIsOrderInsensitive) {
  Table a("log", LogSchema());
  Table b("log", LogSchema());
  ASSERT_TRUE(a.Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(a.Insert({Value(2), Value(20)}).ok());
  ASSERT_TRUE(b.Insert({Value(2), Value(20)}).ok());
  ASSERT_TRUE(b.Insert({Value(1), Value(10)}).ok());
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
}

TEST(Table, ClearEmptiesAndKeepsWorking) {
  Table t("ac", AclSchema());
  ASSERT_TRUE(t.Insert({Value("a"), Value("W")}).ok());
  t.Clear();
  EXPECT_TRUE(t.empty());
  ASSERT_TRUE(t.Insert({Value("b"), Value("R")}).ok());
  EXPECT_EQ(t.LookupByKey({Value("b")}).size(), 1u);
}

}  // namespace
}  // namespace adn::rpc
