// The Cache element (ISSUE 10 tentpole): DSL surface, ARC hit/miss/fill
// semantics, TTL expiry, capacity eviction, tier parity (interpreter vs
// engine stage vs burst), migration invariance, aggregation primitives and
// the hit-rate-aware placement of caches toward the client.
#include <gtest/gtest.h>

#include "compiler/backend.h"
#include "compiler/compiler.h"
#include "compiler/lower.h"
#include "controller/placement.h"
#include "dsl/parser.h"
#include "elements/filter_ops.h"
#include "elements/library.h"
#include "ir/exec.h"
#include "mrpc/engine.h"

namespace adn {
namespace {

using ir::ProcessOutcome;
using ir::ProcessResult;
using rpc::Message;
using rpc::Value;

constexpr char kCacheSrc[] =
    "CACHE C (capacity => 4, ttl_ms => 0) KEY (object_id);\n";

std::shared_ptr<const ir::ElementIr> LowerNamed(const std::string& source,
                                                const std::string& name) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto element = program->FindElement(name);
  EXPECT_NE(element, nullptr);
  return element;
}

Message Request(uint64_t id, int64_t object_id) {
  return Message::MakeRequest(id, "Get", {{"object_id", Value(object_id)}});
}

Message ResponseFor(const Message& request, int64_t object_id) {
  return Message::MakeResponse(
      request, {{"result", Value("v" + std::to_string(object_id))},
                {"payload", Value(Bytes(16, static_cast<uint8_t>(object_id)))}});
}

// Round-trips one key through an instance: request (miss) then response
// (fill). Returns the request outcome.
ProcessOutcome Fill(ir::ElementInstance& inst, uint64_t id, int64_t key,
                    int64_t now_ns) {
  Message req = Request(id, key);
  ProcessResult r = inst.Process(req, now_ns);
  Message resp = ResponseFor(req, key);
  EXPECT_EQ(inst.Process(resp, now_ns).outcome, ProcessOutcome::kPass);
  return r.outcome;
}

// --- DSL surface -------------------------------------------------------------

TEST(CacheDsl, ParsesDeclaration) {
  auto parsed = dsl::ParseProgram(
      "CACHE RC (capacity => 128, ttl_ms => 250) KEY (user, object_id);\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->caches.size(), 1u);
  const dsl::CacheDecl& decl = parsed->caches[0];
  EXPECT_EQ(decl.name, "RC");
  ASSERT_EQ(decl.args.size(), 2u);
  EXPECT_EQ(decl.args[0].first, "capacity");
  EXPECT_EQ(decl.args[0].second.AsInt(), 128);
  EXPECT_EQ(decl.args[1].first, "ttl_ms");
  ASSERT_EQ(decl.key_fields.size(), 2u);
  EXPECT_EQ(decl.key_fields[0], "user");
  EXPECT_EQ(decl.key_fields[1], "object_id");
  EXPECT_NE(parsed->FindCache("RC"), nullptr);
}

TEST(CacheDsl, RejectsDuplicateAndMalformed) {
  // Cache name colliding with an element.
  EXPECT_FALSE(dsl::ParseProgram("ELEMENT X ON REQUEST { INPUT (a INT); "
                                 "SELECT * FROM input; }\n"
                                 "CACHE X (capacity => 4) KEY (a);\n")
                   .ok());
  // Empty key list.
  EXPECT_FALSE(dsl::ParseProgram("CACHE C (capacity => 4) KEY ();\n").ok());
}

TEST(CacheDsl, LoweringValidatesArgs) {
  auto lower = [](const std::string& src) {
    auto parsed = dsl::ParseProgram(src);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return compiler::LowerProgram(*parsed);
  };
  EXPECT_FALSE(lower("CACHE C (ttl_ms => 5) KEY (k);\n").ok());      // no cap
  EXPECT_FALSE(lower("CACHE C (capacity => 0) KEY (k);\n").ok());    // zero
  EXPECT_FALSE(lower("CACHE C (capacity => -3) KEY (k);\n").ok());   // neg
  EXPECT_FALSE(
      lower("CACHE C (capacity => 4, nope => 1) KEY (k);\n").ok());  // unknown
  EXPECT_FALSE(
      lower("CACHE C (capacity => 4, ttl_ms => -1) KEY (k);\n").ok());

  auto ok = lower(kCacheSrc);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  auto element = ok->FindElement("C");
  ASSERT_NE(element, nullptr);
  ASSERT_TRUE(element->IsCache());
  EXPECT_EQ(element->cache_op->capacity, 4u);
  EXPECT_EQ(element->cache_op->ttl_ns, 0);
  EXPECT_EQ(element->cache_op->table, "__cache_C");
  EXPECT_EQ(element->direction, dsl::Direction::kBoth);
  ASSERT_EQ(element->effects.fields_read,
            std::vector<std::string>{"object_id"});
  ASSERT_EQ(element->effects.tables_written,
            std::vector<std::string>{"__cache_C"});
}

// --- Interpreter semantics ---------------------------------------------------

TEST(CacheExec, MissFillHitCycle) {
  auto code = LowerNamed(kCacheSrc, "C");
  ir::ElementInstance inst(code, 1);

  // First sight of the key: miss, passes down the chain.
  Message req = Request(1, 7);
  EXPECT_EQ(inst.Process(req, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.cache_misses(), 1u);
  EXPECT_EQ(inst.cache_hits(), 0u);

  // Response fills the pending entry.
  Message resp = ResponseFor(req, 7);
  EXPECT_EQ(inst.Process(resp, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.cache_fills(), 1u);
  EXPECT_EQ(inst.FindTable("__cache_C")->RowCount(), 1u);

  // Same key again: reply short-circuit with the cached fields grafted on.
  Message again = Request(2, 7);
  ProcessResult r = inst.Process(again, 0);
  EXPECT_EQ(r.outcome, ProcessOutcome::kReply);
  EXPECT_EQ(again.kind(), rpc::MessageKind::kResponse);
  EXPECT_EQ(again.id(), 2u) << "hit must preserve the live request envelope";
  EXPECT_EQ(again.method(), "Get");
  EXPECT_EQ(again.GetFieldOrNull("result").AsText(), "v7");
  EXPECT_EQ(inst.cache_hits(), 1u);
  EXPECT_EQ(inst.dropped(), 0u) << "kReply is a success, never a drop";

  // A different key misses independently.
  Message other = Request(3, 8);
  EXPECT_EQ(inst.Process(other, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.cache_misses(), 2u);
}

TEST(CacheExec, ResponseWithoutPendingIsIgnored) {
  auto code = LowerNamed(kCacheSrc, "C");
  ir::ElementInstance inst(code, 1);
  Message orphan = Message::MakeResponse(Request(99, 5), {{"result",
                                                           Value("x")}});
  EXPECT_EQ(inst.Process(orphan, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.cache_fills(), 0u);
  EXPECT_EQ(inst.FindTable("__cache_C")->RowCount(), 0u);
}

TEST(CacheExec, TtlExpiresEntries) {
  auto code =
      LowerNamed("CACHE C (capacity => 4, ttl_ms => 1) KEY (object_id);\n",
                 "C");
  ir::ElementInstance inst(code, 1);
  EXPECT_EQ(Fill(inst, 1, 7, 0), ProcessOutcome::kPass);

  // Inside the 1 ms TTL: hit.
  Message fresh = Request(2, 7);
  EXPECT_EQ(inst.Process(fresh, 500'000).outcome, ProcessOutcome::kReply);

  // Past the TTL: expired, erased, treated as a miss.
  Message stale = Request(3, 7);
  EXPECT_EQ(inst.Process(stale, 2'000'000).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.cache_expired(), 1u);
  EXPECT_EQ(inst.FindTable("__cache_C")->RowCount(), 0u);

  // The miss re-registered a pending entry; the response refills.
  Message refill = ResponseFor(stale, 7);
  EXPECT_EQ(inst.Process(refill, 2'000'000).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.FindTable("__cache_C")->RowCount(), 1u);
  Message again = Request(4, 7);
  EXPECT_EQ(inst.Process(again, 2'100'000).outcome, ProcessOutcome::kReply);
}

TEST(CacheExec, CapacityBoundsResidency) {
  auto code = LowerNamed(kCacheSrc, "C");  // capacity 4
  ir::ElementInstance inst(code, 1);
  for (int64_t k = 0; k < 20; ++k) {
    EXPECT_EQ(Fill(inst, static_cast<uint64_t>(k + 1), k, k),
              ProcessOutcome::kPass);
    EXPECT_LE(inst.FindTable("__cache_C")->RowCount(), 4u)
        << "after key " << k;
  }
  EXPECT_EQ(inst.cache_fills(), 20u);
  EXPECT_EQ(inst.cache_evicted(), 16u) << "every fill past capacity evicts";
  // The most recent key is resident.
  Message req = Request(100, 19);
  EXPECT_EQ(inst.Process(req, 100).outcome, ProcessOutcome::kReply);
}

TEST(CacheExec, ArcKeepsFrequentKeyThroughScans) {
  auto code = LowerNamed(kCacheSrc, "C");  // capacity 4
  ir::ElementInstance inst(code, 1);
  uint64_t id = 1;
  // Establish a hot key and promote it to the frequency list.
  EXPECT_EQ(Fill(inst, id++, 0, 0), ProcessOutcome::kPass);
  Message hot1 = Request(id++, 0);
  EXPECT_EQ(inst.Process(hot1, 1).outcome, ProcessOutcome::kReply);
  // A one-shot scan churns through 12 cold keys.
  for (int64_t k = 100; k < 112; ++k) {
    (void)Fill(inst, id++, k, 2);
  }
  // The hot key survived the scan: recency-only churn evicts from T1.
  Message hot2 = Request(id++, 0);
  EXPECT_EQ(inst.Process(hot2, 3).outcome, ProcessOutcome::kReply);
}

// --- Tier parity -------------------------------------------------------------

// The cache has exactly one implementation (the interpreter's RunCache), but
// it is reachable through three execution paths: direct interpreter calls,
// a GeneratedStage on an engine (compiled tier declines caches and falls
// back), and the engine's stage-major burst loop. All three must produce
// identical outcomes, message rewrites, counters and state hashes.
TEST(CacheParity, ScalarStageAndBurstAgree) {
  auto code = LowerNamed(
      "CACHE C (capacity => 8, ttl_ms => 0) KEY (object_id);\n", "C");
  ir::ElementInstance interp(code, 3);
  mrpc::GeneratedStage scalar(code, 3);
  EXPECT_FALSE(scalar.compiled()) << "caches must decline the compiled tier";

  mrpc::EngineChain chain;
  auto burst_owner = std::make_unique<mrpc::GeneratedStage>(code, 3);
  mrpc::GeneratedStage* burst = burst_owner.get();
  chain.AddStage(std::move(burst_owner));

  Rng rng(2026);
  uint64_t next_id = 1;
  constexpr size_t kBurst = 8;
  for (int round = 0; round < 60; ++round) {
    const int64_t now = round;
    // A burst of skewed requests.
    std::vector<Message> base;
    for (size_t i = 0; i < kBurst; ++i) {
      // Favor small keys: key = r % 6 with two draws gives a rough zipf-ish
      // skew without pulling in the sampler.
      uint64_t draw = std::min(rng.NextBelow(12), rng.NextBelow(12));
      base.push_back(Request(next_id++, static_cast<int64_t>(draw)));
    }
    std::vector<Message> m1 = base, m2 = base, m3 = base;
    std::vector<ProcessResult> r3(kBurst);
    chain.ProcessBurst(m3.data(), kBurst, now, r3.data());
    for (size_t i = 0; i < kBurst; ++i) {
      ProcessResult r1 = interp.Process(m1[i], now);
      ProcessResult r2 = scalar.Process(m2[i], now);
      ASSERT_EQ(r1.outcome, r2.outcome) << "round " << round << " lane " << i;
      ASSERT_EQ(r1.outcome, r3[i].outcome)
          << "round " << round << " lane " << i;
      ASSERT_EQ(m1[i].DebugString(), m2[i].DebugString());
      ASSERT_EQ(m1[i].DebugString(), m3[i].DebugString());
    }
    // Misses get responses, again burst vs scalar.
    std::vector<Message> resp_base;
    for (size_t i = 0; i < kBurst; ++i) {
      if (r3[i].outcome == ProcessOutcome::kPass) {
        resp_base.push_back(
            ResponseFor(base[i], base[i].GetFieldOrNull("object_id").AsInt()));
      }
    }
    if (resp_base.empty()) continue;
    std::vector<Message> p1 = resp_base, p2 = resp_base, p3 = resp_base;
    std::vector<ProcessResult> pr3(resp_base.size());
    chain.ProcessBurst(p3.data(), p3.size(), now, pr3.data());
    for (size_t i = 0; i < resp_base.size(); ++i) {
      ASSERT_EQ(interp.Process(p1[i], now).outcome, ProcessOutcome::kPass);
      ASSERT_EQ(scalar.Process(p2[i], now).outcome, ProcessOutcome::kPass);
      ASSERT_EQ(pr3[i].outcome, ProcessOutcome::kPass);
    }
  }

  ir::ElementInstance& stage_state = scalar.instance();
  ir::ElementInstance& burst_state = burst->instance();
  EXPECT_GT(interp.cache_hits(), 0u);
  EXPECT_GT(interp.cache_misses(), 0u);
  EXPECT_EQ(interp.cache_hits(), stage_state.cache_hits());
  EXPECT_EQ(interp.cache_hits(), burst_state.cache_hits());
  EXPECT_EQ(interp.cache_misses(), stage_state.cache_misses());
  EXPECT_EQ(interp.cache_misses(), burst_state.cache_misses());
  EXPECT_EQ(interp.cache_fills(), burst_state.cache_fills());
  EXPECT_EQ(interp.StateContentHash(), stage_state.StateContentHash());
  EXPECT_EQ(interp.StateContentHash(), burst_state.StateContentHash());
  EXPECT_EQ(chain.dropped(), 0u) << "cache replies must not count as drops";
}

// --- Migration ---------------------------------------------------------------

TEST(CacheMigration, SnapshotRestorePreservesStateAndServesHits) {
  auto code = LowerNamed(kCacheSrc, "C");
  ir::ElementInstance a(code, 5);
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(Fill(a, static_cast<uint64_t>(k + 1), k, 0),
              ProcessOutcome::kPass);
  }
  const uint64_t hash_before = a.StateContentHash();

  ir::ElementInstance b(code, 99);
  ASSERT_TRUE(b.RestoreState(a.SnapshotState()).ok());
  // The ARC metadata is derived, not state: the hash must match exactly.
  EXPECT_EQ(b.StateContentHash(), hash_before);

  // The restored instance serves hits for the migrated rows (the ARC
  // residency index is rebuilt lazily from the table).
  Message req = Request(50, 2);
  EXPECT_EQ(b.Process(req, 0).outcome, ProcessOutcome::kReply);
  EXPECT_EQ(req.GetFieldOrNull("result").AsText(), "v2");
  // And reading through the cache did not change the durable state.
  EXPECT_EQ(b.StateContentHash(), hash_before);
}

TEST(CacheMigration, EraseSliceInvalidatesResidency) {
  auto code = LowerNamed(kCacheSrc, "C");
  ir::ElementInstance inst(code, 5);
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(Fill(inst, static_cast<uint64_t>(k + 1), k, 0),
              ProcessOutcome::kPass);
  }
  // Hand the whole key space away (1 slot of 1): all rows leave.
  size_t erased = inst.EraseSlice(0, 1);
  EXPECT_EQ(erased, 4u);
  // No stale hits off the dropped slice.
  Message req = Request(50, 2);
  EXPECT_EQ(inst.Process(req, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(inst.cache_hits(), 0u);
}

// --- Aggregation primitives --------------------------------------------------

constexpr char kAggSrc[] =
    "FILTER CountAll ON REQUEST USING agg_count(key => username);\n"
    "FILTER SumBytes ON REQUEST USING agg_sum(field => amount, "
    "key => username);\n"
    "FILTER Hot ON REQUEST USING agg_topk(key => username, k => 2);\n";

Message AggMessage(uint64_t id, const std::string& user, int64_t amount) {
  return Message::MakeRequest(
      id, "M", {{"username", Value(user)}, {"amount", Value(amount)}});
}

TEST(AggOps, CountSumTopkTrackTheStream) {
  auto parsed = dsl::ParseProgram(kAggSrc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto stage = [&](const char* name) {
    auto element = program->FindElement(name);
    EXPECT_NE(element, nullptr);
    auto made = elements::MakeFilterStage(*element->filter_op);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    return std::move(made).value();
  };
  auto count_stage = stage("CountAll");
  auto sum_stage = stage("SumBytes");
  auto topk_stage = stage("Hot");
  auto* count = static_cast<elements::AggCountOp*>(count_stage.get());
  auto* sum = static_cast<elements::AggSumOp*>(sum_stage.get());
  auto* topk = static_cast<elements::AggTopkOp*>(topk_stage.get());

  // u0 x6, u1 x3, u2 x1 — all observers see the same stream and pass.
  const struct { const char* user; int n; } mix[] = {
      {"u0", 6}, {"u1", 3}, {"u2", 1}};
  uint64_t id = 1;
  for (const auto& [user, n] : mix) {
    for (int i = 0; i < n; ++i) {
      Message m = AggMessage(id++, user, 10);
      EXPECT_EQ(count->Process(m, 0).outcome, ProcessOutcome::kPass);
      EXPECT_EQ(sum->Process(m, 0).outcome, ProcessOutcome::kPass);
      EXPECT_EQ(topk->Process(m, 0).outcome, ProcessOutcome::kPass);
    }
  }

  EXPECT_EQ(count->total(), 10u);
  EXPECT_EQ(count->CountFor(Value("u0")), 6u);
  EXPECT_EQ(count->CountFor(Value("u2")), 1u);
  EXPECT_EQ(count->CountFor(Value("nobody")), 0u);

  EXPECT_DOUBLE_EQ(sum->total(), 100.0);
  EXPECT_EQ(sum->samples(), 10u);
  EXPECT_DOUBLE_EQ(sum->SumFor(Value("u0")), 60.0);

  // k=2: the heavy hitters are u0 and u1; space-saving error bound holds.
  auto hitters = topk->TopK();
  ASSERT_EQ(hitters.size(), 2u);
  EXPECT_EQ(hitters[0].key, "u0");
  EXPECT_GE(hitters[0].count, 6u);
  EXPECT_LE(hitters[0].count - hitters[0].err, 6u);

  // A message without the summed field passes through uncounted.
  Message bare = Message::MakeRequest(id++, "M", {{"username", Value("u0")}});
  EXPECT_EQ(sum->Process(bare, 0).outcome, ProcessOutcome::kPass);
  EXPECT_EQ(sum->samples(), 10u);
}

TEST(AggOps, PreciseEffectsAndConstrainedProcessorFeasibility) {
  auto parsed = dsl::ParseProgram(kAggSrc);
  ASSERT_TRUE(parsed.ok());
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto sum_elem = program->FindElement("SumBytes");
  ASSERT_NE(sum_elem, nullptr);
  EXPECT_FALSE(sum_elem->effects.may_drop);
  EXPECT_FALSE(sum_elem->effects.nondeterministic);
  EXPECT_EQ(sum_elem->effects.fields_read,
            (std::vector<std::string>{"amount", "username"}));

  // Aggregations run on constrained processors; shaping filters do not.
  for (const char* name : {"CountAll", "SumBytes", "Hot"}) {
    auto e = program->FindElement(name);
    EXPECT_TRUE(
        compiler::CheckFeasible(*e, compiler::TargetPlatform::kEbpf).feasible)
        << name;
    EXPECT_TRUE(
        compiler::CheckFeasible(*e, compiler::TargetPlatform::kP4Switch)
            .feasible)
        << name;
  }
  auto limiter = LowerNamed(std::string(elements::RateLimitFilterSql()),
                            "Limiter");
  EXPECT_FALSE(
      compiler::CheckFeasible(*limiter, compiler::TargetPlatform::kP4Switch)
          .feasible);

  // Caches never leave general cores.
  auto cache = LowerNamed(kCacheSrc, "C");
  EXPECT_FALSE(
      compiler::CheckFeasible(*cache, compiler::TargetPlatform::kEbpf)
          .feasible);
  EXPECT_FALSE(
      compiler::CheckFeasible(*cache, compiler::TargetPlatform::kP4Switch)
          .feasible);
}

TEST(AggOps, ParseDepthWindowGatesSwitchPlacement) {
  auto parsed = dsl::ParseProgram(kAggSrc);
  ASSERT_TRUE(parsed.ok());
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  auto count_elem = program->FindElement("CountAll");  // reads `username`
  ASSERT_NE(count_elem, nullptr);

  const size_t window = sim::CostModel::Default().p4_parse_depth_bytes;
  // Key field parseable at a fixed offset near the front: feasible.
  rpc::HeaderSpec front;
  front.fields.push_back({"username", rpc::ValueType::kInt});
  EXPECT_TRUE(
      compiler::CheckP4ParseDepth(*count_elem, front, window).feasible);
  // Behind a variable-length field: the switch parser cannot reach it.
  rpc::HeaderSpec behind;
  behind.fields.push_back({"payload", rpc::ValueType::kBytes});
  behind.fields.push_back({"username", rpc::ValueType::kInt});
  EXPECT_FALSE(
      compiler::CheckP4ParseDepth(*count_elem, behind, window).feasible);
}

// --- Placement ---------------------------------------------------------------

TEST(CachePlacement, MinLatencyPullsCacheTowardClient) {
  compiler::Compiler c;
  auto program = c.CompileSource(elements::CacheChainSource(), {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const compiler::CompiledChain& chain = program->chains[0];
  ASSERT_TRUE(chain.elements[0].ir->IsCache());

  controller::PathEnvironment env;  // in-app allowed, apps untrusted
  auto in_app =
      controller::PlaceChain(chain, env, controller::PlacementPolicy::kMinLatency);
  ASSERT_TRUE(in_app.ok()) << in_app.status().ToString();
  EXPECT_EQ(in_app->sites[0], mrpc::Site::kClientApp)
      << in_app->DebugString(chain);

  env.allow_in_app = false;
  auto engines =
      controller::PlaceChain(chain, env, controller::PlacementPolicy::kMinLatency);
  ASSERT_TRUE(engines.ok()) << engines.status().ToString();
  EXPECT_EQ(engines->sites[0], mrpc::Site::kClientEngine)
      << engines->DebugString(chain);
}

}  // namespace
}  // namespace adn
