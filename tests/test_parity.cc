// Behavioral parity: compiler-generated elements must make the same
// decisions as their hand-written twins on identical message streams —
// the correctness half of the paper's generated-vs-hand-coded comparison.
#include <gtest/gtest.h>

#include "compiler/chain_compile.h"
#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/handcoded.h"
#include "elements/library.h"
#include "ir/program.h"

namespace adn {
namespace {

using ir::ProcessOutcome;
using rpc::Message;
using rpc::Value;

std::shared_ptr<const ir::ElementIr> LowerNamed(const std::string& source,
                                                const std::string& name) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto element = program->FindElement(name);
  EXPECT_NE(element, nullptr);
  return element;
}

TEST(Parity, AclDecisionsMatch) {
  auto code = LowerNamed(std::string(elements::AclTableSql()) +
                             std::string(elements::AclSql()),
                         "Acl");
  mrpc::GeneratedStage generated(code, 1);
  for (auto [user, perm] : std::initializer_list<std::pair<const char*, const char*>>{
           {"alice", "W"}, {"bob", "R"}, {"carol", "W"}}) {
    (void)generated.instance().FindTable("ac_tab")->Insert(
        {Value(std::string(user)), Value(std::string(perm))});
  }
  elements::HandAcl hand({{"alice", 'W'}, {"bob", 'R'}, {"carol", 'W'}});

  Rng rng(42);
  const char* users[] = {"alice", "bob", "carol", "mallory"};
  for (int i = 0; i < 500; ++i) {
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"username", Value(std::string(users[rng.NextBelow(4)]))},
         {"payload", Value(Bytes{1})}});
    Message m2 = m;
    EXPECT_EQ(generated.Process(m, 0).outcome, hand.Process(m2, 0).outcome)
        << m.DebugString();
  }
}

TEST(Parity, HashLbPicksSameBackend) {
  auto code = LowerNamed(std::string(elements::EndpointsTableSql()) +
                             std::string(elements::HashLbSql()),
                         "HashLb");
  mrpc::GeneratedStage generated(code, 1);
  std::vector<rpc::EndpointId> shard_map;
  for (int shard = 0; shard < elements::kLbShards; ++shard) {
    rpc::EndpointId endpoint = 200 + shard % 3;
    (void)generated.instance().FindTable("endpoints")->Insert(
        {Value(shard), Value(static_cast<int64_t>(endpoint))});
    shard_map.push_back(endpoint);
  }
  elements::HandHashLb hand(shard_map);

  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    int64_t oid = static_cast<int64_t>(rng.NextBelow(1'000'000));
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"object_id", Value(oid)}, {"payload", Value(Bytes{1})}});
    Message m2 = m;
    ASSERT_EQ(generated.Process(m, 0).outcome, ProcessOutcome::kPass);
    ASSERT_EQ(hand.Process(m2, 0).outcome, ProcessOutcome::kPass);
    EXPECT_EQ(m.destination(), m2.destination()) << "object_id=" << oid;
  }
}

TEST(Parity, CompressProducesIdenticalBytes) {
  auto code = LowerNamed(std::string(elements::CompressSql()), "Compress");
  mrpc::GeneratedStage generated(code, 1);
  elements::HandCompress hand(true);
  Rng rng(5);
  for (size_t size : {0u, 1u, 100u, 5000u}) {
    Bytes payload(size);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBelow(16));
    Message m1 = Message::MakeRequest(1, "M", {{"payload", Value(payload)}});
    Message m2 = m1;
    ASSERT_EQ(generated.Process(m1, 0).outcome, ProcessOutcome::kPass);
    ASSERT_EQ(hand.Process(m2, 0).outcome, ProcessOutcome::kPass);
    EXPECT_EQ(m1.GetFieldOrNull("payload").AsBytes(),
              m2.GetFieldOrNull("payload").AsBytes());
  }
}

TEST(Parity, FaultRatesAgreeInAggregate) {
  // Different RNG streams, so compare aggregate drop rates, not decisions.
  auto code = LowerNamed(std::string(elements::FaultSql()), "Fault");
  mrpc::GeneratedStage generated(code, 11);
  elements::HandFault hand(0.05, 22);
  int gen_drops = 0, hand_drops = 0;
  constexpr int kTotal = 40'000;
  for (int i = 0; i < kTotal; ++i) {
    Message m = Message::MakeRequest(static_cast<uint64_t>(i), "M",
                                     {{"payload", Value(Bytes{1})}});
    Message m2 = m;
    if (generated.Process(m, 0).outcome != ProcessOutcome::kPass) ++gen_drops;
    if (hand.Process(m2, 0).outcome != ProcessOutcome::kPass) ++hand_drops;
  }
  EXPECT_NEAR(gen_drops / double(kTotal), 0.05, 0.005);
  EXPECT_NEAR(hand_drops / double(kTotal), 0.05, 0.005);
}

TEST(Parity, LoggingRecordsSameCountAndSizes) {
  auto code = LowerNamed(std::string(elements::LogTableSql()) +
                             std::string(elements::LoggingSql()),
                         "Logging");
  mrpc::GeneratedStage generated(code, 1);
  elements::HandLogging hand;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    Bytes payload(rng.NextBelow(200));
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"username", Value("u" + std::to_string(i % 5))},
         {"payload", Value(payload)}});
    Message m2 = m;
    ASSERT_EQ(generated.Process(m, 0).outcome, ProcessOutcome::kPass);
    ASSERT_EQ(hand.Process(m2, 0).outcome, ProcessOutcome::kPass);
  }
  const rpc::Table* log = generated.instance().FindTable("log_tab");
  ASSERT_EQ(log->RowCount(), 100u);
  ASSERT_EQ(hand.records().size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(log->rows()[i][0].AsInt(), hand.records()[i].rpc_id);
    EXPECT_EQ(log->rows()[i][1].AsText(), hand.records()[i].who);
    EXPECT_EQ(log->rows()[i][2].AsInt(), hand.records()[i].bytes);
  }
}

// --- Interpreter vs compiled ChainProgram -----------------------------------
//
// The tree-walking interpreter (ElementInstance::Process) is the reference
// semantics; the flat ChainProgram executor must agree with it bit for bit
// on mutations, outcomes, abort messages and table state. Randomized DSL
// programs drive both tiers over identical message streams.

std::string RandomElementSource(Rng& rng) {
  auto num = [&](uint64_t lo, uint64_t hi) {
    return std::to_string(static_cast<int64_t>(lo + rng.NextBelow(hi - lo)));
  };
  std::string src =
      "STATE TABLE t (k INT PRIMARY KEY, v INT);\n"
      "STATE TABLE acc (rpc INT, x INT, y INT);\n"
      "ELEMENT Rand ON BOTH {\n"
      "  INPUT (a INT, b INT, username TEXT, payload BYTES);\n";
  switch (rng.NextBelow(3)) {
    case 0: break;
    case 1: src += "  ON DROP ABORT 'rand abort';\n"; break;
    case 2: src += "  ON DROP SILENT;\n"; break;
  }
  size_t statements = 2 + rng.NextBelow(3);
  for (size_t i = 0; i < statements; ++i) {
    switch (rng.NextBelow(6)) {
      case 0:
        src += "  SELECT *, a + " + num(1, 9) + " AS a, a * b AS b" +
               " FROM input WHERE a % " + num(2, 6) + " != " + num(0, 2) +
               ";\n";
        break;
      case 1:
        src += "  SELECT *, t.v AS b FROM input JOIN t ON a % 8 = t.k" +
               std::string(" WHERE t.v >= ") + num(0, 4) + ";\n";
        break;
      case 2:
        src += "  SELECT *, len(payload) + b AS b FROM input WHERE b >= " +
               num(0, 30) + " OR username = 'u1';\n";
        break;
      case 3:
        src += "  INSERT INTO acc VALUES (rpc_id(), a, b);\n";
        break;
      case 4:
        src += "  UPDATE t SET v = v + " + num(1, 5) +
               " WHERE k = input.a % 8;\n";
        break;
      case 5:
        src += "  DELETE FROM t WHERE v < " + num(0, 3) + ";\n";
        break;
    }
  }
  src += "}\n";
  return src;
}

void SeedJoinTable(ir::ElementInstance& inst) {
  // Lowering only materializes the tables the element references; a random
  // program that never touches `t` has nothing to seed.
  rpc::Table* t = inst.FindTable("t");
  if (t == nullptr) return;
  for (int64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(t->Insert({Value(k), Value((k * 7) % 5)}).ok());
  }
}

TEST(Differential, RandomProgramsAgreeAcrossTiers) {
  Rng meta(2024);
  for (int round = 0; round < 30; ++round) {
    const std::string src = RandomElementSource(meta);
    SCOPED_TRACE(src);
    auto code = LowerNamed(src, "Rand");
    const uint64_t seed = 1000 + static_cast<uint64_t>(round);

    ir::ElementInstance interp(code, seed);
    ir::ElementInstance compiled_state(code, seed);
    SeedJoinTable(interp);
    SeedJoinTable(compiled_state);

    auto program = compiler::CompileElementProgram(*code);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ir::ChainExecutor exec(program.value(), {&compiled_state});

    Rng msgs(seed * 7 + 3);
    for (int i = 0; i < 40; ++i) {
      Message m1 = Message::MakeRequest(
          static_cast<uint64_t>(i), "M",
          {{"a", Value(static_cast<int64_t>(msgs.NextBelow(64)))},
           {"b", Value(static_cast<int64_t>(msgs.NextBelow(100)) - 50)},
           {"username",
            Value("u" + std::to_string(msgs.NextBelow(3)))},
           {"payload", Value(Bytes(msgs.NextBelow(9), 0x5a))}});
      Message m2 = m1;
      ir::ProcessResult r1 = interp.Process(m1, /*now_ns=*/i);
      ir::ProcessResult r2 = exec.Process(m2, /*now_ns=*/i);
      ASSERT_EQ(r1.outcome, r2.outcome) << "message " << i;
      ASSERT_EQ(r1.abort_message, r2.abort_message) << "message " << i;
      ASSERT_EQ(m1.DebugString(), m2.DebugString()) << "message " << i;
    }
    EXPECT_EQ(interp.StateContentHash(), compiled_state.StateContentHash());
    EXPECT_EQ(interp.processed(), compiled_state.processed());
    EXPECT_EQ(interp.dropped(), compiled_state.dropped());
  }
}

TEST(Differential, LibraryElementsAgreeAcrossTiers) {
  // The curated elements exercise joins, routing, UDF calls and updates;
  // run each through both tiers on one stream.
  struct Case {
    std::string source;
    const char* name;
  };
  std::vector<Case> cases = {
      {std::string(elements::AclTableSql()) + std::string(elements::AclSql()),
       "Acl"},
      {std::string(elements::LogTableSql()) +
           std::string(elements::LoggingSql()),
       "Logging"},
      {std::string(elements::FaultSql()), "Fault"},
      {std::string(elements::EndpointsTableSql()) +
           std::string(elements::HashLbSql()),
       "HashLb"},
      {std::string(elements::CompressSql()), "Compress"},
      {std::string(elements::QuotaTableSql()) +
           std::string(elements::QuotaSql()),
       "Quota"},
      {std::string(elements::TelemetryTableSql()) +
           std::string(elements::TelemetrySql()),
       "Telemetry"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    auto code = LowerNamed(c.source, c.name);
    ir::ElementInstance interp(code, 9);
    ir::ElementInstance compiled_state(code, 9);
    for (auto* inst : {&interp, &compiled_state}) {
      if (rpc::Table* acl = inst->FindTable("ac_tab")) {
        ASSERT_TRUE(acl->Insert({Value("alice"), Value("W")}).ok());
        ASSERT_TRUE(acl->Insert({Value("bob"), Value("R")}).ok());
      }
      if (rpc::Table* eps = inst->FindTable("endpoints")) {
        for (int64_t shard = 0; shard < elements::kLbShards; ++shard) {
          ASSERT_TRUE(eps->Insert({Value(shard), Value(200 + shard % 3)}).ok());
        }
      }
      if (rpc::Table* quota = inst->FindTable("quota")) {
        ASSERT_TRUE(quota->Insert({Value("alice"), Value(5)}).ok());
        ASSERT_TRUE(quota->Insert({Value("bob"), Value(2)}).ok());
      }
      if (rpc::Table* tel = inst->FindTable("telemetry")) {
        ASSERT_TRUE(tel->Insert({Value("M"), Value(0)}).ok());
      }
    }
    auto program = compiler::CompileElementProgram(*code);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ir::ChainExecutor exec(program.value(), {&compiled_state});

    Rng msgs(31);
    const char* users[] = {"alice", "bob", "mallory"};
    for (int i = 0; i < 200; ++i) {
      Bytes payload(msgs.NextBelow(64));
      for (auto& b : payload) b = static_cast<uint8_t>(msgs.NextBelow(16));
      Message m1 = Message::MakeRequest(
          static_cast<uint64_t>(i), "M",
          {{"username", Value(std::string(users[msgs.NextBelow(3)]))},
           {"object_id", Value(static_cast<int64_t>(msgs.NextBelow(100000)))},
           {"payload", Value(payload)}});
      Message m2 = m1;
      ir::ProcessResult r1 = interp.Process(m1, i);
      ir::ProcessResult r2 = exec.Process(m2, i);
      ASSERT_EQ(r1.outcome, r2.outcome) << c.name << " message " << i;
      ASSERT_EQ(r1.abort_message, r2.abort_message);
      ASSERT_EQ(m1.DebugString(), m2.DebugString());
      EXPECT_EQ(m1.destination(), m2.destination());
    }
    EXPECT_EQ(interp.StateContentHash(), compiled_state.StateContentHash());
    EXPECT_EQ(interp.processed(), compiled_state.processed());
    EXPECT_EQ(interp.dropped(), compiled_state.dropped());
  }
}

TEST(Parity, GeneratedCostIsWithinPaperBandOfHandCoded) {
  // The simulated cost model encodes the 3-12% band; verify it holds for
  // every twin pair.
  const auto& model = sim::CostModel::Default();
  struct Pair {
    std::string source;
    std::string name;
    std::function<double()> hand_cost;
  };
  elements::HandAcl acl({});
  elements::HandFault fault(0.05, 1);
  elements::HandLogging logging;
  elements::HandCompress compress(true);
  std::vector<Pair> pairs = {
      {std::string(elements::AclTableSql()) + std::string(elements::AclSql()),
       "Acl", [&] { return acl.CostNs(model, 64); }},
      {std::string(elements::FaultSql()), "Fault",
       [&] { return fault.CostNs(model, 64); }},
      {std::string(elements::LogTableSql()) +
           std::string(elements::LoggingSql()),
       "Logging", [&] { return logging.CostNs(model, 64); }},
      {std::string(elements::CompressSql()), "Compress",
       [&] { return compress.CostNs(model, 64); }},
  };
  for (const auto& pair : pairs) {
    auto code = LowerNamed(pair.source, pair.name);
    mrpc::GeneratedStage generated(code, 1);
    double gen = generated.CostNs(model, 64);
    double hand = pair.hand_cost();
    double overhead = (gen - hand) / gen;
    EXPECT_GE(overhead, 0.03) << pair.name << " gen=" << gen
                              << " hand=" << hand;
    EXPECT_LE(overhead, 0.12) << pair.name << " gen=" << gen
                              << " hand=" << hand;
  }
}

}  // namespace
}  // namespace adn
