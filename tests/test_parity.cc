// Behavioral parity: compiler-generated elements must make the same
// decisions as their hand-written twins on identical message streams —
// the correctness half of the paper's generated-vs-hand-coded comparison.
#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/handcoded.h"
#include "elements/library.h"

namespace adn {
namespace {

using ir::ProcessOutcome;
using rpc::Message;
using rpc::Value;

std::shared_ptr<const ir::ElementIr> LowerNamed(const std::string& source,
                                                const std::string& name) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto element = program->FindElement(name);
  EXPECT_NE(element, nullptr);
  return element;
}

TEST(Parity, AclDecisionsMatch) {
  auto code = LowerNamed(std::string(elements::AclTableSql()) +
                             std::string(elements::AclSql()),
                         "Acl");
  mrpc::GeneratedStage generated(code, 1);
  for (auto [user, perm] : std::initializer_list<std::pair<const char*, const char*>>{
           {"alice", "W"}, {"bob", "R"}, {"carol", "W"}}) {
    (void)generated.instance().FindTable("ac_tab")->Insert(
        {Value(std::string(user)), Value(std::string(perm))});
  }
  elements::HandAcl hand({{"alice", 'W'}, {"bob", 'R'}, {"carol", 'W'}});

  Rng rng(42);
  const char* users[] = {"alice", "bob", "carol", "mallory"};
  for (int i = 0; i < 500; ++i) {
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"username", Value(std::string(users[rng.NextBelow(4)]))},
         {"payload", Value(Bytes{1})}});
    Message m2 = m;
    EXPECT_EQ(generated.Process(m, 0).outcome, hand.Process(m2, 0).outcome)
        << m.DebugString();
  }
}

TEST(Parity, HashLbPicksSameBackend) {
  auto code = LowerNamed(std::string(elements::EndpointsTableSql()) +
                             std::string(elements::HashLbSql()),
                         "HashLb");
  mrpc::GeneratedStage generated(code, 1);
  std::vector<rpc::EndpointId> shard_map;
  for (int shard = 0; shard < elements::kLbShards; ++shard) {
    rpc::EndpointId endpoint = 200 + shard % 3;
    (void)generated.instance().FindTable("endpoints")->Insert(
        {Value(shard), Value(static_cast<int64_t>(endpoint))});
    shard_map.push_back(endpoint);
  }
  elements::HandHashLb hand(shard_map);

  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    int64_t oid = static_cast<int64_t>(rng.NextBelow(1'000'000));
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"object_id", Value(oid)}, {"payload", Value(Bytes{1})}});
    Message m2 = m;
    ASSERT_EQ(generated.Process(m, 0).outcome, ProcessOutcome::kPass);
    ASSERT_EQ(hand.Process(m2, 0).outcome, ProcessOutcome::kPass);
    EXPECT_EQ(m.destination(), m2.destination()) << "object_id=" << oid;
  }
}

TEST(Parity, CompressProducesIdenticalBytes) {
  auto code = LowerNamed(std::string(elements::CompressSql()), "Compress");
  mrpc::GeneratedStage generated(code, 1);
  elements::HandCompress hand(true);
  Rng rng(5);
  for (size_t size : {0u, 1u, 100u, 5000u}) {
    Bytes payload(size);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBelow(16));
    Message m1 = Message::MakeRequest(1, "M", {{"payload", Value(payload)}});
    Message m2 = m1;
    ASSERT_EQ(generated.Process(m1, 0).outcome, ProcessOutcome::kPass);
    ASSERT_EQ(hand.Process(m2, 0).outcome, ProcessOutcome::kPass);
    EXPECT_EQ(m1.GetFieldOrNull("payload").AsBytes(),
              m2.GetFieldOrNull("payload").AsBytes());
  }
}

TEST(Parity, FaultRatesAgreeInAggregate) {
  // Different RNG streams, so compare aggregate drop rates, not decisions.
  auto code = LowerNamed(std::string(elements::FaultSql()), "Fault");
  mrpc::GeneratedStage generated(code, 11);
  elements::HandFault hand(0.05, 22);
  int gen_drops = 0, hand_drops = 0;
  constexpr int kTotal = 40'000;
  for (int i = 0; i < kTotal; ++i) {
    Message m = Message::MakeRequest(static_cast<uint64_t>(i), "M",
                                     {{"payload", Value(Bytes{1})}});
    Message m2 = m;
    if (generated.Process(m, 0).outcome != ProcessOutcome::kPass) ++gen_drops;
    if (hand.Process(m2, 0).outcome != ProcessOutcome::kPass) ++hand_drops;
  }
  EXPECT_NEAR(gen_drops / double(kTotal), 0.05, 0.005);
  EXPECT_NEAR(hand_drops / double(kTotal), 0.05, 0.005);
}

TEST(Parity, LoggingRecordsSameCountAndSizes) {
  auto code = LowerNamed(std::string(elements::LogTableSql()) +
                             std::string(elements::LoggingSql()),
                         "Logging");
  mrpc::GeneratedStage generated(code, 1);
  elements::HandLogging hand;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    Bytes payload(rng.NextBelow(200));
    Message m = Message::MakeRequest(
        static_cast<uint64_t>(i), "M",
        {{"username", Value("u" + std::to_string(i % 5))},
         {"payload", Value(payload)}});
    Message m2 = m;
    ASSERT_EQ(generated.Process(m, 0).outcome, ProcessOutcome::kPass);
    ASSERT_EQ(hand.Process(m2, 0).outcome, ProcessOutcome::kPass);
  }
  const rpc::Table* log = generated.instance().FindTable("log_tab");
  ASSERT_EQ(log->RowCount(), 100u);
  ASSERT_EQ(hand.records().size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(log->rows()[i][0].AsInt(), hand.records()[i].rpc_id);
    EXPECT_EQ(log->rows()[i][1].AsText(), hand.records()[i].who);
    EXPECT_EQ(log->rows()[i][2].AsInt(), hand.records()[i].bytes);
  }
}

TEST(Parity, GeneratedCostIsWithinPaperBandOfHandCoded) {
  // The simulated cost model encodes the 3-12% band; verify it holds for
  // every twin pair.
  const auto& model = sim::CostModel::Default();
  struct Pair {
    std::string source;
    std::string name;
    std::function<double()> hand_cost;
  };
  elements::HandAcl acl({});
  elements::HandFault fault(0.05, 1);
  elements::HandLogging logging;
  elements::HandCompress compress(true);
  std::vector<Pair> pairs = {
      {std::string(elements::AclTableSql()) + std::string(elements::AclSql()),
       "Acl", [&] { return acl.CostNs(model, 64); }},
      {std::string(elements::FaultSql()), "Fault",
       [&] { return fault.CostNs(model, 64); }},
      {std::string(elements::LogTableSql()) +
           std::string(elements::LoggingSql()),
       "Logging", [&] { return logging.CostNs(model, 64); }},
      {std::string(elements::CompressSql()), "Compress",
       [&] { return compress.CostNs(model, 64); }},
  };
  for (const auto& pair : pairs) {
    auto code = LowerNamed(pair.source, pair.name);
    mrpc::GeneratedStage generated(code, 1);
    double gen = generated.CostNs(model, 64);
    double hand = pair.hand_cost();
    double overhead = (gen - hand) / gen;
    EXPECT_GE(overhead, 0.03) << pair.name << " gen=" << gen
                              << " hand=" << hand;
    EXPECT_LE(overhead, 0.12) << pair.name << " gen=" << gen
                              << " hand=" << hand;
  }
}

}  // namespace
}  // namespace adn
