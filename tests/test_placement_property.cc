// Property sweep over the placement solver: for every combination of policy
// and environment, any placement it produces must satisfy ALL invariants —
// constraints, direction rules, platform feasibility, path monotonicity —
// and infeasibility must be reported, never silently violated.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "controller/placement.h"
#include "elements/library.h"

namespace adn::controller {
namespace {

using compiler::CompiledChain;
using compiler::TargetPlatform;
using mrpc::Site;

struct SweepCase {
  PlacementPolicy policy;
  unsigned env_bits;  // bit0 sender-ebpf, 1 receiver-ebpf, 2 nic, 3 switch,
                      // 4 allow-in-app, 5 trust-app
};

PathEnvironment EnvFromBits(unsigned bits) {
  PathEnvironment env;
  env.sender_kernel_offload = bits & 1;
  env.receiver_kernel_offload = bits & 2;
  env.receiver_smartnic = bits & 4;
  env.p4_switch_on_path = bits & 8;
  env.allow_in_app = bits & 16;
  env.trust_app_binaries = bits & 32;
  return env;
}

class PlacementSweep : public ::testing::TestWithParam<SweepCase> {};

bool SenderSide(Site s) {
  return s == Site::kClientApp || s == Site::kClientEngine ||
         s == Site::kClientKernel;
}
bool ReceiverSide(Site s) {
  return s == Site::kServerNic || s == Site::kServerKernel ||
         s == Site::kServerEngine || s == Site::kServerApp;
}
bool IsApp(Site s) {
  return s == Site::kClientApp || s == Site::kServerApp;
}

TEST_P(PlacementSweep, InvariantsHoldOrInfeasibleReported) {
  const SweepCase param = GetParam();
  PathEnvironment env = EnvFromBits(param.env_bits);

  compiler::Compiler c;
  compiler::CompileOptions options;
  if (param.policy == PlacementPolicy::kMinHostCpu ||
      param.policy == PlacementPolicy::kMinLatency) {
    options.passes.order_strategy = compiler::OrderStrategy::kOffloadSink;
  }
  auto program = c.CompileSource(elements::Fig2ProgramSource(), options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain& chain = program->chains[0];

  auto placement = PlaceChain(chain, env, param.policy);
  if (!placement.ok()) {
    // Infeasibility must be a clean diagnostic, not a crash.
    EXPECT_EQ(placement.error().code(), ErrorCode::kResourceExhausted);
    return;
  }

  ASSERT_EQ(placement->sites.size(), chain.elements.size());
  for (size_t i = 0; i < placement->sites.size(); ++i) {
    Site site = placement->sites[i];
    // 1. Location constraints.
    switch (chain.constraints[i]) {
      case dsl::LocationConstraint::kSender:
        EXPECT_TRUE(SenderSide(site)) << SiteName(site);
        break;
      case dsl::LocationConstraint::kReceiver:
        EXPECT_TRUE(ReceiverSide(site)) << SiteName(site);
        break;
      case dsl::LocationConstraint::kTrusted:
        if (!env.trust_app_binaries) {
          EXPECT_FALSE(IsApp(site)) << SiteName(site);
        }
        break;
      case dsl::LocationConstraint::kAny:
        break;
    }
    // 2. Environment availability.
    switch (site) {
      case Site::kClientKernel:
        EXPECT_TRUE(env.sender_kernel_offload);
        break;
      case Site::kServerKernel:
        EXPECT_TRUE(env.receiver_kernel_offload);
        break;
      case Site::kServerNic:
        EXPECT_TRUE(env.receiver_smartnic);
        break;
      case Site::kSwitch:
        EXPECT_TRUE(env.p4_switch_on_path);
        break;
      case Site::kClientApp:
      case Site::kServerApp:
        EXPECT_TRUE(env.allow_in_app);
        break;
      default:
        break;
    }
    // 3. Platform feasibility.
    const auto& element = chain.elements[i];
    if (site == Site::kClientKernel || site == Site::kServerKernel) {
      EXPECT_TRUE(element.ebpf.feasible) << element.ir->name;
    }
    if (site == Site::kSwitch) {
      EXPECT_TRUE(element.p4.feasible) << element.ir->name;
    }
    // 4. Monotone along the path.
    if (i > 0) {
      EXPECT_LE(static_cast<int>(placement->sites[i - 1]),
                static_cast<int>(site));
    }
  }
}

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (PlacementPolicy policy :
       {PlacementPolicy::kNativeOnly, PlacementPolicy::kInApp,
        PlacementPolicy::kMinHostCpu, PlacementPolicy::kMinLatency}) {
    for (unsigned bits = 0; bits < 64; bits += 3) {  // 22 envs per policy
      cases.push_back({policy, bits});
    }
    cases.push_back({policy, 62});  // everything on (63 = env_bits 63-3k hit)
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementSweep, ::testing::ValuesIn(AllCases()),
    [](const auto& info) {
      std::string name(PlacementPolicyName(info.param.policy));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_env" + std::to_string(info.param.env_bits);
    });

}  // namespace
}  // namespace adn::controller
