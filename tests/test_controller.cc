// Controller tests: cluster watch events, the placement solver across
// policies and environments, state migration (including under in-flight
// traffic on the simulated path), hot update, and the reconcile loop with
// endpoint synchronization.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "controller/migration.h"
#include "controller/placement.h"
#include "core/network.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "mrpc/adn_path.h"

namespace adn::controller {
namespace {

using compiler::CompiledChain;
using compiler::Compiler;
using mrpc::Site;
using rpc::Value;

// --- ClusterState -------------------------------------------------------------

TEST(Cluster, EventsDeliveredToWatchers) {
  ClusterState cluster;
  std::vector<ClusterEvent::Kind> seen;
  cluster.Watch([&](const ClusterEvent& e) { seen.push_back(e.kind); });
  ASSERT_TRUE(cluster.AddMachine({"m1", 8, false, false}).ok());
  ASSERT_TRUE(cluster.AddService("svc").ok());
  auto endpoint = cluster.AddReplica("svc", "m1");
  ASSERT_TRUE(endpoint.ok());
  ASSERT_TRUE(cluster.RemoveReplica("svc", endpoint.value()).ok());
  ASSERT_TRUE(cluster.ApplyConfig("adn-program", "").ok());
  EXPECT_EQ(seen, (std::vector<ClusterEvent::Kind>{
                      ClusterEvent::Kind::kMachineAdded,
                      ClusterEvent::Kind::kServiceAdded,
                      ClusterEvent::Kind::kReplicaAdded,
                      ClusterEvent::Kind::kReplicaRemoved,
                      ClusterEvent::Kind::kConfigApplied}));
}

TEST(Cluster, DuplicatesAndMissingRejected) {
  ClusterState cluster;
  ASSERT_TRUE(cluster.AddMachine({"m1", 8, false, false}).ok());
  EXPECT_FALSE(cluster.AddMachine({"m1", 8, false, false}).ok());
  EXPECT_FALSE(cluster.AddReplica("ghost-svc", "m1").ok());
  ASSERT_TRUE(cluster.AddService("svc").ok());
  EXPECT_FALSE(cluster.AddReplica("svc", "ghost-machine").ok());
  EXPECT_FALSE(cluster.RemoveReplica("svc", 123).ok());
}

TEST(Cluster, ConfigGenerationBumps) {
  ClusterState cluster;
  ASSERT_TRUE(cluster.ApplyConfig("adn-program", "v1").ok());
  ASSERT_TRUE(cluster.ApplyConfig("adn-program", "v2").ok());
  const AdnConfigResource* config = cluster.FindConfig("adn-program");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->generation, 2);
  EXPECT_EQ(config->program_source, "v2");
}

// --- Placement -----------------------------------------------------------------

Result<compiler::CompiledProgram> CompileFig2() {
  Compiler compiler;
  return compiler.CompileSource(elements::Fig2ProgramSource(), {});
}

PathEnvironment RichEnvironment() {
  PathEnvironment env;
  env.sender_kernel_offload = true;
  env.receiver_kernel_offload = true;
  env.receiver_smartnic = true;
  env.p4_switch_on_path = true;
  env.allow_in_app = true;
  return env;
}

TEST(Placement, NativeOnlyUsesEngines) {
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok());
  auto placement = PlaceChain(program->chains[0], RichEnvironment(),
                              PlacementPolicy::kNativeOnly);
  ASSERT_TRUE(placement.ok()) << placement.status().ToString();
  for (Site site : placement->sites) {
    EXPECT_TRUE(site == Site::kClientEngine || site == Site::kServerEngine)
        << SiteName(site);
  }
}

TEST(Placement, SenderReceiverConstraintsHonored) {
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok());
  const CompiledChain& chain = program->chains[0];
  for (PlacementPolicy policy :
       {PlacementPolicy::kNativeOnly, PlacementPolicy::kMinHostCpu,
        PlacementPolicy::kMinLatency}) {
    auto placement = PlaceChain(chain, RichEnvironment(), policy);
    ASSERT_TRUE(placement.ok()) << PlacementPolicyName(policy);
    for (size_t i = 0; i < chain.elements.size(); ++i) {
      if (chain.constraints[i] == dsl::LocationConstraint::kSender) {
        EXPECT_TRUE(placement->sites[i] == Site::kClientApp ||
                    placement->sites[i] == Site::kClientEngine ||
                    placement->sites[i] == Site::kClientKernel)
            << chain.elements[i].ir->name;
      }
      if (chain.constraints[i] == dsl::LocationConstraint::kReceiver) {
        EXPECT_TRUE(placement->sites[i] == Site::kServerNic ||
                    placement->sites[i] == Site::kServerKernel ||
                    placement->sites[i] == Site::kServerEngine ||
                    placement->sites[i] == Site::kServerApp)
            << chain.elements[i].ir->name;
      }
    }
  }
}

TEST(Placement, TrustedNeverInApp) {
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok());
  const CompiledChain& chain = program->chains[0];
  auto placement =
      PlaceChain(chain, RichEnvironment(), PlacementPolicy::kInApp);
  ASSERT_TRUE(placement.ok()) << placement.status().ToString();
  for (size_t i = 0; i < chain.elements.size(); ++i) {
    if (chain.constraints[i] == dsl::LocationConstraint::kTrusted) {
      EXPECT_NE(placement->sites[i], Site::kClientApp);
      EXPECT_NE(placement->sites[i], Site::kServerApp);
    }
  }
}

TEST(Placement, MinHostCpuOffloadsFeasibleElements) {
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok());
  const CompiledChain& chain = program->chains[0];
  auto rich = PlaceChain(chain, RichEnvironment(),
                         PlacementPolicy::kMinHostCpu);
  ASSERT_TRUE(rich.ok());
  // With a switch + NIC available, some element leaves the host.
  bool any_offloaded = false;
  for (Site site : rich->sites) {
    if (site == Site::kSwitch || site == Site::kServerNic) {
      any_offloaded = true;
    }
  }
  EXPECT_TRUE(any_offloaded) << rich->DebugString(chain);

  PathEnvironment bare;  // engines only
  auto fallback =
      PlaceChain(chain, bare, PlacementPolicy::kMinHostCpu);
  ASSERT_TRUE(fallback.ok());
  EXPECT_GT(fallback->estimated_host_cpu_ns, rich->estimated_host_cpu_ns);
}

TEST(Placement, MonotonicityAlongPath) {
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok());
  const CompiledChain& chain = program->chains[0];
  for (PlacementPolicy policy :
       {PlacementPolicy::kNativeOnly, PlacementPolicy::kMinHostCpu,
        PlacementPolicy::kMinLatency, PlacementPolicy::kInApp}) {
    auto placement = PlaceChain(chain, RichEnvironment(), policy);
    ASSERT_TRUE(placement.ok());
    for (size_t i = 1; i < placement->sites.size(); ++i) {
      EXPECT_LE(static_cast<int>(placement->sites[i - 1]),
                static_cast<int>(placement->sites[i]))
          << PlacementPolicyName(policy);
    }
  }
}

TEST(Placement, InfeasibleDiagnosed) {
  // A RECEIVER-constrained element followed by a SENDER-constrained one can
  // never satisfy path monotonicity: the request would have to flow
  // backwards. (Both elements write state so the optimizer cannot reorder
  // them either.)
  Compiler compiler;
  auto program = compiler.CompileSource(R"(
    STATE TABLE t1 (k INT PRIMARY KEY);
    STATE TABLE t2 (k INT PRIMARY KEY);
    ELEMENT A ON REQUEST { INPUT (x INT); INSERT INTO t1 VALUES (x); }
    ELEMENT B ON REQUEST { INPUT (x INT); INSERT INTO t2 VALUES (x); }
    CHAIN c FOR CALLS a -> b { A AT RECEIVER, B AT SENDER }
  )",
                                        {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto placement = PlaceChain(program->chains[0], RichEnvironment(),
                              PlacementPolicy::kNativeOnly);
  ASSERT_FALSE(placement.ok());
  EXPECT_EQ(placement.error().code(), ErrorCode::kResourceExhausted);
}

TEST(Placement, ResponseElementsStayOnSymmetricSites) {
  Compiler compiler;
  auto program = compiler.CompileSource(
      std::string(elements::LogTableSql()) +
          std::string(elements::LoggingSql()) +
          "CHAIN c FOR CALLS a -> b { Logging }",
      {});
  ASSERT_TRUE(program.ok());
  auto placement = PlaceChain(program->chains[0], RichEnvironment(),
                              PlacementPolicy::kMinHostCpu);
  ASSERT_TRUE(placement.ok());
  // Logging is ON BOTH: only apps/engines see both directions.
  Site site = placement->sites[0];
  EXPECT_TRUE(site == Site::kClientApp || site == Site::kClientEngine ||
              site == Site::kServerEngine || site == Site::kServerApp)
      << SiteName(site);
}

// --- Migration ------------------------------------------------------------------

std::unique_ptr<mrpc::GeneratedStage> MakeAclStage(int rows, uint64_t seed) {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::AclSql()));
  auto program = compiler::LowerProgram(*parsed);
  auto stage = std::make_unique<mrpc::GeneratedStage>(
      program->elements[0], seed);
  for (int i = 0; i < rows; ++i) {
    (void)stage->instance().FindTable("ac_tab")->Insert(
        {Value("user" + std::to_string(i)), Value(i % 2 == 0 ? "W" : "R")});
  }
  return stage;
}

TEST(Migration, ScaleOutIsLossless) {
  auto source = MakeAclStage(500, 1);
  auto result = ScaleOutStage(*source, 4, 100);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->instances.size(), 4u);
  EXPECT_TRUE(result->report.lossless());
  EXPECT_GT(result->report.state_bytes, 1000u);
  EXPECT_GT(result->report.pause_ns, 0);
  // Every shard serves its own keys correctly.
  size_t total_rows = 0;
  for (const auto& instance : result->instances) {
    total_rows += instance->instance().FindTable("ac_tab")->RowCount();
  }
  EXPECT_EQ(total_rows, 500u);
}

TEST(Migration, ScaleInMergesBack) {
  auto source = MakeAclStage(300, 1);
  uint64_t original_hash = source->instance().StateContentHash();
  auto out = ScaleOutStage(*source, 3, 10);
  ASSERT_TRUE(out.ok());
  std::vector<const mrpc::GeneratedStage*> shards;
  for (const auto& instance : out->instances) shards.push_back(instance.get());
  auto merged = ScaleInStages(shards, 99);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->report.lossless());
  EXPECT_EQ(merged->instance->instance().StateContentHash(), original_hash);
}

TEST(Migration, ScaleInRejectsMixedElements) {
  auto acl = MakeAclStage(1, 1);
  auto parsed = dsl::ParseProgram(std::string(elements::FaultSql()));
  auto program = compiler::LowerProgram(*parsed);
  mrpc::GeneratedStage fault(program->elements[0], 2);
  auto merged = ScaleInStages({acl.get(), &fault}, 5);
  EXPECT_FALSE(merged.ok());
}

TEST(Migration, HotUpdateKeepsState) {
  auto running = MakeAclStage(50, 1);
  // New code: same table, stricter rule (requires 'W' — same here, but the
  // point is the code object differs).
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) + R"(
    ELEMENT Acl ON REQUEST {
      INPUT (username TEXT, payload BYTES);
      ON DROP ABORT 'denied by v2';
      SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
        WHERE ac_tab.permission = 'W';
    }
  )");
  ASSERT_TRUE(parsed.ok());
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  auto updated = HotUpdateStage(*running, program->elements[0], 7);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_TRUE(updated->report.lossless());
  // v2 behavior with v1 state.
  rpc::Message m = rpc::Message::MakeRequest(
      1, "M",
      {{"username", Value("user1")}, {"payload", Value(Bytes{})}});
  auto r = updated->instance->Process(m, 0);
  EXPECT_EQ(r.outcome, ir::ProcessOutcome::kDropAbort);
  EXPECT_EQ(r.abort_message, "denied by v2");
}

TEST(Migration, HotUpdateRejectsSchemaChange) {
  auto running = MakeAclStage(5, 1);
  auto parsed = dsl::ParseProgram(R"(
    STATE TABLE ac_tab (username TEXT PRIMARY KEY, permission TEXT,
                        added_column INT);
    ELEMENT Acl ON REQUEST {
      INPUT (username TEXT);
      SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username;
    }
  )");
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(HotUpdateStage(*running, program->elements[0], 7).ok());
}

TEST(Migration, PauseScalesWithStateSize) {
  EXPECT_LT(EstimatePauseNs(100), EstimatePauseNs(1'000'000));
  EXPECT_GE(EstimatePauseNs(0), 50'000);  // handshake floor
}

// --- Cutover policies (docs/RECONFIG.md) ---------------------------------------

TEST(Migration, LiveCutoverBlackoutIsDeltaSizedNotStateSized) {
  // Same width change, same state, both policies lossless — but the live
  // policy's charged blackout is the (empty) mutation delta, while
  // pause-drain pays for the full state copy.
  auto source = MakeAclStage(5'000, 1);
  const uint64_t original_hash = source->instance().StateContentHash();

  auto drained = MigrateStageWidth(*source, 4, 500, CutoverPolicy::kPauseDrain);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_TRUE(drained->report.lossless());
  EXPECT_EQ(drained->instance->instance().StateContentHash(), original_hash);

  auto live = MigrateStageWidth(*source, 4, 900, CutoverPolicy::kLive);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_TRUE(live->report.lossless());
  EXPECT_EQ(live->instance->instance().StateContentHash(), original_hash);

  // Nothing mutated during the copy, so the delta is empty and the live
  // blackout sits at the handshake floor; pause-drain pays per state byte.
  EXPECT_EQ(live->report.delta_replayed, 0u);
  EXPECT_EQ(live->report.pause_ns, EstimatePauseNs(0));
  EXPECT_GT(drained->report.pause_ns, live->report.pause_ns);
}

std::unique_ptr<mrpc::GeneratedStage> MakeQuotaStage(int rows, uint64_t seed) {
  auto parsed = dsl::ParseProgram(std::string(elements::QuotaTableSql()) +
                                  std::string(elements::QuotaSql()));
  auto program = compiler::LowerProgram(*parsed);
  auto stage =
      std::make_unique<mrpc::GeneratedStage>(program->elements[0], seed);
  for (int i = 0; i < rows; ++i) {
    (void)stage->instance().FindTable("quota")->Insert(
        {Value("user" + std::to_string(i)), Value(static_cast<int64_t>(100))});
  }
  return stage;
}

TEST(Migration, StateDeltaReplaysMutationsSinceBaseline) {
  // The live protocol's core claim: baseline + bulk copy + delta replay
  // reconstructs the source exactly, even when the source kept mutating
  // after the copy.
  auto source = MakeQuotaStage(200, 1);
  const ir::StateBaseline baseline =
      ir::StateBaseline::Capture(source->instance());
  // "Bulk copy" at baseline time: a fresh instance restored from the
  // snapshot, standing in for the migration destination.
  auto parsed = dsl::ParseProgram(std::string(elements::QuotaTableSql()) +
                                  std::string(elements::QuotaSql()));
  auto program = compiler::LowerProgram(*parsed);
  ir::ElementInstance dest(program->elements[0], 2);
  ASSERT_TRUE(dest.RestoreState(source->instance().SnapshotState()).ok());

  // Mutations during the copy window: quota decrements via real message
  // processing (UPDATE ... remaining - 1), a fresh user, and a departed one.
  for (int i = 0; i < 40; ++i) {
    rpc::Message m = rpc::Message::MakeRequest(
        static_cast<uint64_t>(i + 1), "M",
        {{"username", Value("user" + std::to_string(i % 8))}});
    EXPECT_EQ(source->instance().Process(m, 0).outcome,
              ir::ProcessOutcome::kPass);
  }
  rpc::Table* quota = source->instance().FindTable("quota");
  ASSERT_TRUE(quota->Insert({Value("newcomer"), Value(static_cast<int64_t>(7))})
                  .ok());
  EXPECT_EQ(quota->EraseByKey({Value("user150")}), 1u);

  auto delta = baseline.Diff(source->instance());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  // 8 decremented users + 1 insert = 9 upserts; 1 delete.
  EXPECT_EQ(delta->upserts, 9u);
  EXPECT_EQ(delta->deletes, 1u);
  EXPECT_FALSE(delta->empty());

  ASSERT_TRUE(delta->ApplyTo(dest).ok());
  EXPECT_EQ(dest.StateContentHash(), source->instance().StateContentHash());
  // Replay is idempotent: applying the same delta again changes nothing.
  ASSERT_TRUE(delta->ApplyTo(dest).ok());
  EXPECT_EQ(dest.StateContentHash(), source->instance().StateContentHash());
}

TEST(Migration, SliceSnapshotAndEraseMoveExactlyOneSlot) {
  constexpr size_t kSlots = 64;
  auto source = MakeQuotaStage(300, 1);
  const uint64_t original_hash = source->instance().StateContentHash();
  const size_t original_rows =
      source->instance().FindTable("quota")->RowCount();

  // Move slot 5 into a fresh instance the way EnginePool does: slice
  // snapshot -> MergeState at the destination -> EraseSlice at the source.
  auto parsed = dsl::ParseProgram(std::string(elements::QuotaTableSql()) +
                                  std::string(elements::QuotaSql()));
  auto program = compiler::LowerProgram(*parsed);
  ir::ElementInstance dest(program->elements[0], 2);
  const Bytes slice = source->instance().SnapshotSlice(5, kSlots);
  ASSERT_TRUE(dest.MergeState(slice).ok());
  const size_t moved = source->instance().EraseSlice(5, kSlots);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(dest.FindTable("quota")->RowCount(), moved);
  EXPECT_EQ(source->instance().FindTable("quota")->RowCount(),
            original_rows - moved);
  // The XOR-decomposable hash proves the two sides partition the original.
  EXPECT_EQ(source->instance().StateContentHash() ^ dest.StateContentHash(),
            original_hash);
}

// --- Migration under in-flight traffic -----------------------------------------

// Records the order in which requests traverse its site. The vector is
// shared with the test body so the recorded order outlives the chain.
class OrderProbeStage : public mrpc::EngineStage {
 public:
  explicit OrderProbeStage(std::shared_ptr<std::vector<uint64_t>> order)
      : order_(std::move(order)) {}
  std::string_view name() const override { return "OrderProbe"; }
  bool AppliesTo(rpc::MessageKind kind) const override {
    return kind == rpc::MessageKind::kRequest;
  }
  ir::ProcessResult Process(rpc::Message& message, int64_t) override {
    order_->push_back(message.id());
    return ir::ProcessResult::Pass();
  }
  double CostNs(const sim::CostModel&, size_t) const override { return 50.0; }

 private:
  std::shared_ptr<std::vector<uint64_t>> order_;
};

TEST(Migration, PauseDrainResumeUnderInFlightTraffic) {
  auto parsed = dsl::ParseProgram(std::string(elements::LogTableSql()) +
                                  std::string(elements::LoggingSql()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto logging = program->FindElement("Logging");
  ASSERT_NE(logging, nullptr);

  auto order = std::make_shared<std::vector<uint64_t>>();

  mrpc::AdnPathConfig config;
  config.concurrency = 64;
  config.measured_requests = 3'000;
  config.warmup_requests = 200;
  // Fixed-size payloads mean equal per-message station costs, so arrival
  // order at the server engine equals issue order and any reordering the
  // probe sees is real.
  config.make_request = core::MakeDefaultRequestFactory();
  config.header.fields = {
      {"username", rpc::ValueType::kText, false},
      {"object_id", rpc::ValueType::kInt, false},
      {"payload", rpc::ValueType::kBytes, false},
  };
  config.stages.push_back(
      {Site::kServerEngine,
       [logging] { return std::make_unique<mrpc::GeneratedStage>(logging, 11); }});
  config.stages.push_back(
      {Site::kServerEngine,
       [order] { return std::make_unique<OrderProbeStage>(order); }});

  // Mid-run, widen the server engine through the real scale-out/scale-in
  // protocol while the path is saturated; the site pauses for the charged
  // migration window and traffic must queue behind it.
  bool hashes_round_tripped = false;
  int ticks = 0;
  config.report_interval_ns = 1'000'000;  // 1 ms
  config.on_report = [&](const mrpc::PathReport&) {
    std::vector<mrpc::ReconfigCommand> commands;
    if (++ticks != 2) return commands;
    mrpc::ReconfigCommand cmd;
    cmd.site = Site::kServerEngine;
    cmd.new_width = 2;
    cmd.migrate = [&](mrpc::EngineChain& chain) -> sim::SimTime {
      for (size_t i = 0; i < chain.size(); ++i) {
        auto* stage = dynamic_cast<mrpc::GeneratedStage*>(&chain.stage(i));
        if (stage == nullptr) continue;  // skip the probe
        const uint64_t before = stage->instance().StateContentHash();
        auto out = ScaleOutStage(*stage, 3, 900);
        EXPECT_TRUE(out.ok()) << out.status().ToString();
        if (!out.ok()) break;
        EXPECT_TRUE(out->report.lossless());
        std::vector<const mrpc::GeneratedStage*> sources;
        for (const auto& instance : out->instances) {
          sources.push_back(instance.get());
        }
        auto merged = ScaleInStages(sources, 950);
        EXPECT_TRUE(merged.ok()) << merged.status().ToString();
        if (!merged.ok()) break;
        EXPECT_TRUE(merged->report.lossless());
        EXPECT_EQ(merged->instance->instance().StateContentHash(), before);
        hashes_round_tripped = true;
        chain.ReplaceStage(i, std::move(merged->instance));
      }
      // Charge a pause comfortably longer than the inter-arrival gap so the
      // queueing path is exercised deterministically.
      return 200'000;  // 200 us
    };
    commands.push_back(std::move(cmd));
    return commands;
  };

  auto result = mrpc::RunAdnPathExperiment(config);

  // No message was lost or reordered across the pause.
  EXPECT_EQ(result.stats.completed, 3'200u);
  EXPECT_EQ(result.stats.dropped, 0u);
  ASSERT_EQ(order->size(), 3'200u);
  for (size_t i = 1; i < order->size(); ++i) {
    ASSERT_LT((*order)[i - 1], (*order)[i]) << "reordered at index " << i;
  }

  // The reconfiguration actually happened mid-run, with traffic parked.
  EXPECT_TRUE(hashes_round_tripped);
  ASSERT_EQ(result.reconfigs.size(), 1u);
  EXPECT_EQ(result.reconfigs[0].site, Site::kServerEngine);
  EXPECT_EQ(result.reconfigs[0].old_width, 1);
  EXPECT_EQ(result.reconfigs[0].new_width, 2);
  EXPECT_EQ(result.reconfigs[0].pause_ns, 200'000);
  EXPECT_GT(result.reconfigs[0].queued_during_pause, 0u);
  EXPECT_EQ(result.queued_during_pause,
            result.reconfigs[0].queued_during_pause);
}

// --- Controller reconcile loop -----------------------------------------------------

class ControllerFixture : public ::testing::Test {
 protected:
  ControllerFixture() {
    (void)cluster_.AddMachine({"m1", 10, false, false});
    (void)cluster_.AddMachine({"m2", 10, true, true});
    (void)cluster_.AddService("client");
    (void)cluster_.AddService("server");
    (void)cluster_.AddReplica("client", "m1");
  }
  ClusterState cluster_;
};

TEST_F(ControllerFixture, ReconcilesOnConfigApply) {
  AdnController controller(&cluster_, {});
  EXPECT_EQ(controller.deployment(), nullptr);
  ASSERT_TRUE(
      cluster_.ApplyConfig("adn-program", elements::Fig5ProgramSource()).ok());
  ASSERT_TRUE(controller.last_status().ok())
      << controller.last_status().ToString();
  ASSERT_NE(controller.deployment(), nullptr);
  EXPECT_EQ(controller.deployment()->program.chains.size(), 1u);
  EXPECT_EQ(controller.reconcile_count(), 1);
}

TEST_F(ControllerFixture, BadProgramReportsError) {
  AdnController controller(&cluster_, {});
  ASSERT_TRUE(cluster_.ApplyConfig("adn-program", "ELEMENT broken {").ok());
  EXPECT_FALSE(controller.last_status().ok());
  EXPECT_EQ(controller.deployment(), nullptr);
}

TEST_F(ControllerFixture, ConfigUpdateRedeploys) {
  AdnController controller(&cluster_, {});
  ASSERT_TRUE(
      cluster_.ApplyConfig("adn-program", elements::Fig5ProgramSource()).ok());
  int64_t gen1 = controller.deployment()->generation;
  ASSERT_TRUE(
      cluster_.ApplyConfig("adn-program", elements::Fig2ProgramSource()).ok());
  ASSERT_TRUE(controller.last_status().ok());
  EXPECT_GT(controller.deployment()->generation, gen1);
  EXPECT_NE(controller.deployment()->program.FindChain("fig2"), nullptr);
}

TEST_F(ControllerFixture, EndpointRowsTrackReplicas) {
  AdnController controller(&cluster_, {});
  auto e1 = cluster_.AddReplica("server", "m2");
  ASSERT_TRUE(e1.ok());
  auto rows = controller.EndpointRows("server");
  ASSERT_EQ(rows.size(), static_cast<size_t>(elements::kLbShards));
  for (const auto& row : rows) {
    EXPECT_EQ(row[1].AsInt(), static_cast<int64_t>(e1.value()));
  }
  auto e2 = cluster_.AddReplica("server", "m2");
  ASSERT_TRUE(e2.ok());
  rows = controller.EndpointRows("server");
  int to_e1 = 0, to_e2 = 0;
  for (const auto& row : rows) {
    if (row[1].AsInt() == static_cast<int64_t>(e1.value())) ++to_e1;
    if (row[1].AsInt() == static_cast<int64_t>(e2.value())) ++to_e2;
  }
  EXPECT_EQ(to_e1, elements::kLbShards / 2);
  EXPECT_EQ(to_e2, elements::kLbShards / 2);
  EXPECT_EQ(controller.endpoint_updates(), 2);  // the two adds it observed
}

TEST_F(ControllerFixture, BuildStagesSeedsState) {
  ControllerOptions options;
  options.state_seeds = {
      {"ac_tab", {{Value("alice"), Value("W")}}},
  };
  AdnController controller(&cluster_, options);
  ASSERT_TRUE(
      cluster_.ApplyConfig("adn-program", elements::Fig5ProgramSource()).ok());
  ASSERT_TRUE(controller.last_status().ok());
  auto stages = controller.BuildStages("fig5", 1);
  ASSERT_TRUE(stages.ok()) << stages.status().ToString();
  ASSERT_EQ(stages->size(), 3u);
  // Materialize the ACL stage and check the seeded rule.
  for (const auto& placed : *stages) {
    auto stage = placed.factory();
    ASSERT_NE(stage, nullptr);
    if (std::string(stage->name()) == "Acl") {
      auto* generated = dynamic_cast<mrpc::GeneratedStage*>(stage.get());
      ASSERT_NE(generated, nullptr);
      EXPECT_EQ(
          generated->instance().FindTable("ac_tab")->RowCount(), 1u);
    }
  }
}

TEST_F(ControllerFixture, BuildStagesUnknownChain) {
  AdnController controller(&cluster_, {});
  ASSERT_TRUE(
      cluster_.ApplyConfig("adn-program", elements::Fig5ProgramSource()).ok());
  EXPECT_FALSE(controller.BuildStages("ghost", 1).ok());
}

TEST(ControllerScaling, WidthRecommendations) {
  ClusterState cluster;
  ControllerOptions options;
  options.max_engine_width = 8;
  AdnController controller(&cluster, options);
  EXPECT_EQ(controller.RecommendEngineWidth(0.95, 1), 2);
  EXPECT_EQ(controller.RecommendEngineWidth(0.95, 4), 8);
  EXPECT_EQ(controller.RecommendEngineWidth(0.95, 8), 8);  // capped
  EXPECT_EQ(controller.RecommendEngineWidth(0.5, 2), 2);   // steady
  EXPECT_EQ(controller.RecommendEngineWidth(0.1, 4), 2);   // scale in
  EXPECT_EQ(controller.RecommendEngineWidth(0.1, 1), 1);   // floor
}

}  // namespace
}  // namespace adn::controller
