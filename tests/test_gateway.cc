// Tests for §7 external communication: ingress/egress translation between
// real gRPC-over-HTTP/2 bytes and the ADN minimal wire format, and direct
// ADN-to-ADN application peering.
#include <gtest/gtest.h>

#include "core/gateway.h"

namespace adn::core {
namespace {

using rpc::Value;
using rpc::ValueType;

rpc::Schema ExternalSchema() {
  rpc::Schema s;
  (void)s.AddColumn({"user", ValueType::kText, false});
  (void)s.AddColumn({"object", ValueType::kInt, false});
  (void)s.AddColumn({"data", ValueType::kBytes, false});
  return s;
}

rpc::HeaderSpec AdnSpec() {
  rpc::HeaderSpec spec;
  spec.fields = {{"username", ValueType::kText, false},
                 {"object_id", ValueType::kInt, false},
                 {"payload", ValueType::kBytes, false}};
  return spec;
}

IngressMapping Mapping() {
  IngressMapping mapping;
  mapping.header_fields = {{"x-tenant", "tenant"}};
  mapping.body_fields = {{"user", "username"},
                         {"object", "object_id"},
                         {"data", "payload"}};
  return mapping;
}

Bytes MakeExternalRequest(stack::HpackCodec& enc) {
  rpc::Message body;
  body.SetField("user", Value("alice"));
  body.SetField("object", Value(777));
  body.SetField("data", Value(Bytes{1, 2, 3}));
  stack::ProtoSchema proto(ExternalSchema());
  auto payload = stack::ProtoEncode(body, proto);
  EXPECT_TRUE(payload.ok());
  stack::GrpcHttp2Message h2;
  h2.headers = stack::MakeGrpcRequestHeaders(
      "store", "/Store.Get", {{"x-tenant", "acme"}});
  h2.grpc_payload = std::move(payload).value();
  h2.stream_id = 1;
  h2.end_stream = true;
  return EncodeGrpcMessage(h2, enc);
}

TEST(Ingress, TranslatesGrpcIntoAdnWire) {
  rpc::MethodRegistry methods;
  rpc::HeaderSpec spec = AdnSpec();
  spec.fields.push_back({"tenant", ValueType::kText, false});
  IngressGateway ingress(ExternalSchema(), Mapping(), spec, &methods);

  stack::HpackCodec client_enc, gateway_dec;
  Bytes grpc_wire = MakeExternalRequest(client_enc);
  auto adn_wire = ingress.TranslateIn(grpc_wire, gateway_dec, 42, 9);
  ASSERT_TRUE(adn_wire.ok()) << adn_wire.error().ToString();
  EXPECT_EQ(ingress.translated(), 1u);

  // The ADN side decodes a fully mapped tuple.
  rpc::AdnWireCodec codec(spec, &methods);
  auto decoded = codec.Decode(adn_wire.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id(), 42u);
  EXPECT_EQ(decoded->destination(), 9u);
  EXPECT_EQ(decoded->method(), "Store.Get");
  EXPECT_EQ(decoded->GetFieldOrNull("username").AsText(), "alice");
  EXPECT_EQ(decoded->GetFieldOrNull("object_id").AsInt(), 777);
  EXPECT_EQ(decoded->GetFieldOrNull("payload").AsBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(decoded->GetFieldOrNull("tenant").AsText(), "acme");

  // The ADN wire is smaller than the external framing it replaced.
  EXPECT_LT(adn_wire->size(), grpc_wire.size());
}

TEST(Ingress, RejectsGarbage) {
  rpc::MethodRegistry methods;
  IngressGateway ingress(ExternalSchema(), Mapping(), AdnSpec(), &methods);
  stack::HpackCodec dec;
  Bytes garbage = {1, 2, 3};
  EXPECT_FALSE(ingress.TranslateIn(garbage, dec, 1, 1).ok());
}

TEST(Egress, TranslatesResponseBackToGrpc) {
  rpc::MethodRegistry methods;
  methods.Intern("Store.Get");
  rpc::HeaderSpec spec = AdnSpec();
  EgressGateway egress(ExternalSchema(), Mapping(), spec, &methods);

  // An ADN response carrying the payload back.
  rpc::Message resp;
  resp.set_kind(rpc::MessageKind::kResponse);
  resp.set_id(42);
  resp.set_method("Store.Get");
  resp.SetField("payload", Value(Bytes{9, 9}));
  resp.SetField("username", Value("alice"));
  rpc::AdnWireCodec codec(spec, &methods);
  Bytes adn_wire;
  ASSERT_TRUE(codec.Encode(resp, adn_wire).ok());

  stack::HpackCodec gateway_enc, client_dec;
  auto grpc_wire = egress.TranslateOut(adn_wire, gateway_enc, 1);
  ASSERT_TRUE(grpc_wire.ok()) << grpc_wire.error().ToString();

  auto parsed = stack::ParseGrpcMessage(grpc_wire.value(), client_dec);
  ASSERT_TRUE(parsed.ok());
  bool status_ok = false;
  for (const auto& [k, v] : parsed->headers) {
    if (k == "grpc-status") status_ok = v == "0";
  }
  EXPECT_TRUE(status_ok);
  stack::ProtoSchema proto(ExternalSchema());
  auto body = stack::ProtoDecode(parsed->grpc_payload, proto);
  ASSERT_TRUE(body.ok());
  // Renamed back to the external field names.
  EXPECT_EQ(body->GetFieldOrNull("data").AsBytes(), (Bytes{9, 9}));
  EXPECT_EQ(body->GetFieldOrNull("user").AsText(), "alice");
}

TEST(Egress, NetworkErrorsBecomeGrpcStatus) {
  rpc::MethodRegistry methods;
  methods.Intern("Store.Get");
  rpc::HeaderSpec spec = AdnSpec();
  EgressGateway egress(ExternalSchema(), Mapping(), spec, &methods);

  rpc::Message req = rpc::Message::MakeRequest(7, "Store.Get", {});
  rpc::Message err = rpc::Message::MakeNetworkError(req, "permission denied");
  rpc::AdnWireCodec codec(spec, &methods);
  Bytes adn_wire;
  ASSERT_TRUE(codec.Encode(err, adn_wire).ok());

  stack::HpackCodec enc, dec;
  auto grpc_wire = egress.TranslateOut(adn_wire, enc, 1);
  ASSERT_TRUE(grpc_wire.ok());
  auto parsed = stack::ParseGrpcMessage(grpc_wire.value(), dec);
  ASSERT_TRUE(parsed.ok());
  std::string status, message;
  for (const auto& [k, v] : parsed->headers) {
    if (k == "grpc-status") status = v;
    if (k == "grpc-message") message = v;
  }
  EXPECT_EQ(status, "13");
  EXPECT_EQ(message, "permission denied");
}

TEST(Peering, DirectAdnToAdnTranslation) {
  // ADN A: a store app; ADN B: an analytics app with different field and
  // method names.
  rpc::MethodRegistry methods_a, methods_b;
  methods_a.Intern("Store.Get");
  methods_b.Intern("Analytics.Ingest");
  rpc::HeaderSpec spec_a = AdnSpec();
  rpc::HeaderSpec spec_b;
  spec_b.fields = {{"who", ValueType::kText, false},
                   {"item", ValueType::kInt, false},
                   {"blob", ValueType::kBytes, false}};

  PeeringTranslator peering(
      spec_a, &methods_a, spec_b, &methods_b,
      {{"username", "who"}, {"object_id", "item"}, {"payload", "blob"}},
      {{"Store.Get", "Analytics.Ingest"}});

  rpc::Message m = rpc::Message::MakeRequest(
      5, "Store.Get",
      {{"username", Value("carol")},
       {"object_id", Value(321)},
       {"payload", Value(Bytes{4, 5})}});
  m.set_source(1);
  m.set_destination(2);
  rpc::AdnWireCodec codec_a(spec_a, &methods_a);
  Bytes wire_a;
  ASSERT_TRUE(codec_a.Encode(m, wire_a).ok());

  auto wire_b = peering.Translate(wire_a);
  ASSERT_TRUE(wire_b.ok()) << wire_b.error().ToString();

  rpc::AdnWireCodec codec_b(spec_b, &methods_b);
  auto decoded = codec_b.Decode(wire_b.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method(), "Analytics.Ingest");
  EXPECT_EQ(decoded->id(), 5u);
  EXPECT_EQ(decoded->GetFieldOrNull("who").AsText(), "carol");
  EXPECT_EQ(decoded->GetFieldOrNull("item").AsInt(), 321);
  EXPECT_EQ(decoded->GetFieldOrNull("blob").AsBytes(), (Bytes{4, 5}));
  // Peering halves the translation steps of the standard-format detour.
  EXPECT_LT(PeeringTranslator::kPeeringSteps,
            PeeringTranslator::kViaStandardSteps);
}

TEST(Peering, UnknownTargetMethodRejected) {
  rpc::MethodRegistry methods_a, methods_b;
  methods_a.Intern("Store.Get");
  // methods_b deliberately empty: no mapping interned.
  rpc::HeaderSpec spec = AdnSpec();
  PeeringTranslator peering(spec, &methods_a, spec, &methods_b, {}, {});
  rpc::Message m = rpc::Message::MakeRequest(1, "Store.Get",
                                             {{"username", Value("x")}});
  rpc::AdnWireCodec codec_a(spec, &methods_a);
  Bytes wire_a;
  ASSERT_TRUE(codec_a.Encode(m, wire_a).ok());
  EXPECT_FALSE(peering.Translate(wire_a).ok());
}

}  // namespace
}  // namespace adn::core
