// Concurrency tests: the SPSC ring under a real producer/consumer pair, the
// obs metrics registry under concurrent writers + snapshot readers + Reset,
// and the multi-worker EnginePool (shard routing, merge-on-read state
// invariants, fused concurrent parallel groups).
//
// This whole file is the ThreadSanitizer CI target (ci.yml `tsan` job):
// every test here must stay TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/analysis.h"
#include "mrpc/engine_pool.h"
#include "mrpc/ring.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "rpc/intern.h"

namespace adn {
namespace {

using mrpc::EnginePool;
using mrpc::SpscRing;
using rpc::Value;

// --- SpscRing under two real threads -----------------------------------------

TEST(SpscRingStress, TwoThreadCountAndChecksum) {
  constexpr uint64_t kItems = 200'000;
  SpscRing<uint64_t> ring(64);

  uint64_t expected_sum = 0;
  uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (uint64_t i = 0; i < kItems; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    expected_sum += x;
  }

  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};
  std::thread consumer([&] {
    uint64_t count = 0;
    uint64_t local_sum = 0;
    while (count < kItems) {
      if (std::optional<uint64_t> v = ring.TryPop()) {
        local_sum += *v;
        ++count;
      } else {
        std::this_thread::yield();
      }
    }
    popped.store(count, std::memory_order_release);
    sum.store(local_sum, std::memory_order_release);
  });

  uint64_t y = 0x9E3779B97F4A7C15ULL;
  for (uint64_t i = 0; i < kItems; ++i) {
    y ^= y << 13;
    y ^= y >> 7;
    y ^= y << 17;
    while (!ring.TryPush(y)) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_EQ(popped.load(), kItems);
  EXPECT_EQ(sum.load(), expected_sum);
  EXPECT_EQ(ring.enqueued(), kItems);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingStress, TwoThreadMoveOnlyOrdered) {
  constexpr int kItems = 50'000;
  SpscRing<std::unique_ptr<int>> ring(16);

  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      std::optional<std::unique_ptr<int>> v;
      while (!(v = ring.TryPop()).has_value()) std::this_thread::yield();
      if (*v == nullptr || **v != i) {
        ok.store(false, std::memory_order_release);
        return;
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    auto p = std::make_unique<int>(i);
    while (!ring.TryPush(std::move(p))) {
      std::this_thread::yield();
      // TryPush only consumes the value on success.
    }
  }
  consumer.join();
  EXPECT_TRUE(ok.load());
}

TEST(SpscRingStress, TwoThreadBurstPopAgainstScalarProducer) {
  // Consumer drains with TryPopBurst while the producer pushes one at a
  // time: the burst drain's single acquire must still see fully published
  // slot contents (this is the exact shape the EnginePool worker loop runs).
  constexpr uint64_t kItems = 200'000;
  SpscRing<uint64_t> ring(64);

  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    uint64_t out[48];
    uint64_t expect = 0;
    while (expect < kItems) {
      const size_t got = ring.TryPopBurst(out, 48);
      if (got == 0) {
        std::this_thread::yield();
        continue;
      }
      for (size_t i = 0; i < got; ++i) {
        if (out[i] != expect++) {
          ok.store(false, std::memory_order_release);
          return;
        }
      }
    }
  });
  for (uint64_t i = 0; i < kItems; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ok.load());
}

TEST(SpscRingStress, TwoThreadBurstPushBurstPopMoveOnly) {
  // Both ends bursty, move-only payloads: TryPushBurst's single release
  // must publish every slot it filled, and partially accepted bursts must
  // leave the rejected tail intact for retry.
  constexpr int kItems = 50'000;
  SpscRing<std::unique_ptr<int>> ring(16);

  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    std::unique_ptr<int> out[8];
    int expect = 0;
    while (expect < kItems) {
      const size_t got = ring.TryPopBurst(out, 8);
      if (got == 0) {
        std::this_thread::yield();
        continue;
      }
      for (size_t i = 0; i < got; ++i) {
        if (out[i] == nullptr || *out[i] != expect++) {
          ok.store(false, std::memory_order_release);
          return;
        }
      }
    }
  });
  std::unique_ptr<int> in[8];
  int next = 0;
  while (next < kItems) {
    size_t n = 0;
    while (n < 8 && next + static_cast<int>(n) < kItems) {
      in[n] = std::make_unique<int>(next + static_cast<int>(n));
      ++n;
    }
    size_t sent = 0;
    while (sent < n) {
      const size_t accepted = ring.TryPushBurst(in + sent, n - sent);
      sent += accepted;
      if (accepted == 0) std::this_thread::yield();
    }
    next += static_cast<int>(n);
  }
  consumer.join();
  EXPECT_TRUE(ok.load());
}

TEST(SpscRingStress, ArenaMessagesHandOffAndRecycleAcrossThreads) {
  // The zero-allocation data plane's lifecycle under real threads: a single
  // producer leases an arena per message (ArenaPool::Acquire is single-
  // consumer), the lease rides the ring inside the moved Message, and the
  // CONSUMER thread's destruction releases the arena back to the pool
  // (Release is multi-producer). Two rings/consumers make the release side
  // genuinely concurrent — TSan runs this file in CI.
  constexpr int kItems = 20'000;
  constexpr int kConsumers = 2;
  common::ArenaPool pool(1024);
  const rpc::FieldId seq_fid = rpc::InternFieldName("seq_text");
  std::vector<std::unique_ptr<SpscRing<rpc::Message>>> rings;
  for (int c = 0; c < kConsumers; ++c) {
    rings.push_back(std::make_unique<SpscRing<rpc::Message>>(64));
  }

  std::atomic<bool> ok{true};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      for (int i = c; i < kItems; i += kConsumers) {
        std::optional<rpc::Message> m;
        while (!(m = rings[static_cast<size_t>(c)]->TryPop()).has_value()) {
          std::this_thread::yield();
        }
        const rpc::Value* v = m->FindField(seq_fid);
        if (v == nullptr || !m->arena_backed() ||
            v->AsText() != "m" + std::to_string(i)) {
          ok.store(false, std::memory_order_release);
          return;
        }
        // `m` destroyed here: the arena lease is released on THIS thread.
      }
    });
  }
  for (int i = 0; i < kItems; ++i) {
    rpc::Message m = rpc::Message::WithArena(pool);
    m.set_id(static_cast<uint64_t>(i));
    m.SetText(seq_fid, "m" + std::to_string(i));
    auto& ring = *rings[static_cast<size_t>(i % kConsumers)];
    while (!ring.TryPush(std::move(m))) std::this_thread::yield();
  }
  for (auto& t : consumers) t.join();
  EXPECT_TRUE(ok.load());
  // Steady state must run on recycled arenas, not fresh heap: the pool can
  // only ever create as many arenas as are simultaneously in flight
  // (bounded by the ring capacities), and everything else is reuse.
  EXPECT_GT(pool.reused(), 0u);
  EXPECT_LE(pool.created(), static_cast<uint64_t>(kConsumers * 64 + 1));
  EXPECT_EQ(pool.created() + pool.reused(), static_cast<uint64_t>(kItems));
}

// --- obs::EventRing under real producer/consumer threads ---------------------

TEST(EventRingStress, TwoThreadEmitDrainLosslessWithRetry) {
  // Trace-record transport analogue of TwoThreadCountAndChecksum: a real
  // producer emitting 64-byte TraceEvents against a real consumer draining
  // in bursts. With the producer retrying on full, every event must arrive
  // exactly once with its payload intact.
  constexpr uint64_t kItems = 200'000;
  obs::EventRing ring(256);

  std::atomic<uint64_t> drained{0};
  std::atomic<uint64_t> sum{0};
  std::thread consumer([&] {
    obs::TraceEvent buf[64];
    uint64_t count = 0;
    uint64_t local_sum = 0;
    while (count < kItems) {
      const size_t n = ring.Drain(buf, 64);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (size_t i = 0; i < n; ++i) local_sum += buf[i].arg;
      count += n;
    }
    drained.store(count, std::memory_order_release);
    sum.store(local_sum, std::memory_order_release);
  });

  uint64_t expected_sum = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kBurst;
    e.span_id = i + 1;
    e.arg = i * 2654435761ULL;
    expected_sum += e.arg;
    while (!ring.TryEmit(e)) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_EQ(drained.load(), kItems);
  EXPECT_EQ(sum.load(), expected_sum);
  EXPECT_EQ(ring.emitted(), kItems);  // accepted events, not attempts
  EXPECT_EQ(ring.size(), 0u);
}

TEST(EventRingStress, EvictionIsDropCountedNeverBlocking) {
  // The telemetry-loss contract: a producer that never retries must never
  // block or lose events silently — what the consumer sees plus dropped()
  // accounts for every attempt, and the survivors keep FIFO order.
  constexpr uint64_t kAttempts = 100'000;
  obs::EventRing ring(64);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> drained{0};
  std::atomic<bool> ordered{true};
  std::thread consumer([&] {
    obs::TraceEvent buf[32];
    uint64_t count = 0;
    uint64_t last_seen = 0;
    for (;;) {
      const size_t n = ring.Drain(buf, 32);
      for (size_t i = 0; i < n; ++i) {
        if (buf[i].arg <= last_seen && count + i > 0) {
          ordered.store(false, std::memory_order_release);
        }
        last_seen = buf[i].arg;
      }
      count += n;
      if (n == 0) {
        if (done.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
      }
    }
    drained.store(count, std::memory_order_release);
  });

  for (uint64_t i = 0; i < kAttempts; ++i) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kBurst;
    e.arg = i + 1;  // strictly increasing payload: FIFO check is a < chain
    (void)ring.TryEmit(e);  // full ring drops — by design, never waits
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_TRUE(ordered.load());
  EXPECT_EQ(drained.load() + ring.dropped(), kAttempts);
  EXPECT_EQ(ring.emitted(), drained.load());
  EXPECT_GT(ring.dropped(), 0u);  // capacity 64 vs 100k attempts must evict
}

TEST(EventRingStress, RegistryDrainAllAccountsEveryEmitAcrossThreads) {
  // Multi-producer shape of the real system: several worker threads each
  // emitting into their own registry-owned ring while one collector thread
  // drains concurrently. Every attempt ends up drained or drop-counted.
  auto& registry = obs::EventRingRegistry::Default();
  registry.Reset();

  constexpr int kThreads = 3;
  constexpr uint64_t kPerThread = 20'000;
  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      registry.SetThisThreadLabel("stress-" + std::to_string(t));
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::kBurst;
        e.span_id = obs::NextSpanId();
        e.arg = i;
        obs::EmitEvent(e);
      }
    });
  }
  start.store(true, std::memory_order_release);

  uint64_t drained = 0;
  std::vector<obs::TraceEvent> out;
  for (int i = 0; i < 50; ++i) {  // drain concurrently with the producers
    out.clear();
    drained += registry.DrainAll(out);
    std::this_thread::yield();
  }
  for (std::thread& th : producers) th.join();
  for (;;) {  // final sweep after the producers stop
    out.clear();
    const size_t n = registry.DrainAll(out);
    if (n == 0) break;
    drained += n;
  }

  EXPECT_EQ(drained + registry.TotalDropped(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  registry.Reset();
}

// --- Metrics registry under writers + snapshots + Reset ----------------------

TEST(RegistryStress, ConcurrentWritersSnapshotsAndReset) {
  obs::MetricsRegistry registry;  // private instance: no cross-test bleed

  constexpr int kWriters = 4;
  constexpr int kIterations = 20'000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      const std::string label = "writer=\"" + std::to_string(t) + "\"";
      for (int i = 0; i < kIterations; ++i) {
        // Re-resolve every iteration: races Get* against Reset's retirement.
        registry.GetCounter("stress_ops_total", label).Inc();
        registry.GetGauge("stress_depth", label).Set(i);
        registry.GetHistogram("stress_latency_ns", label)
            .Observe(100.0 + i % 1000);
      }
    });
  }
  std::thread reader([&registry, &stop] {
    int resets = 0;
    while (!stop.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot snap = registry.Snapshot();
      // Every sample present in a snapshot must be internally consistent.
      for (const obs::MetricSample& s : snap.samples) {
        if (s.kind == obs::MetricKind::kHistogram) {
          uint64_t total = 0;
          for (uint64_t b : s.bucket_counts) total += b;
          ASSERT_LE(s.count, total + 0u);  // counts published before buckets?
        }
      }
      if (++resets % 16 == 0) registry.Reset();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Post-reset registrations start fresh and export normally.
  registry.Reset();
  registry.GetCounter("stress_ops_total", "writer=\"0\"").Inc(7);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::MetricSample* s =
      snap.Find("stress_ops_total", "writer=\"0\"");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 7.0);
}

TEST(RegistryStress, ResetKeepsOutstandingReferencesWritable) {
  obs::MetricsRegistry registry;
  obs::Counter& stale = registry.GetCounter("gen0_total");
  stale.Inc(3);
  registry.Reset();
  // The retired instrument stays valid writable memory; it is simply no
  // longer exported.
  stale.Inc(2);
  EXPECT_EQ(stale.Value(), 5u);
  EXPECT_EQ(registry.Snapshot().Find("gen0_total"), nullptr);
  // A fresh registration under the same name starts from zero.
  obs::Counter& fresh = registry.GetCounter("gen0_total");
  EXPECT_NE(&fresh, &stale);
  EXPECT_EQ(fresh.Value(), 0u);
}

// --- EnginePool ---------------------------------------------------------------

constexpr size_t kLoggingIdx = 0;
constexpr size_t kAclIdx = 1;

std::vector<std::shared_ptr<const ir::ElementIr>> LogAclElements() {
  auto parsed =
      dsl::ParseProgram(std::string(elements::AclTableSql()) +
                        std::string(elements::LogTableSql()) +
                        std::string(elements::LoggingSql()) +
                        std::string(elements::AclSql()));
  auto lowered = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(lowered.ok());
  return {lowered->FindElement("Logging"), lowered->FindElement("Acl")};
}

std::string UserName(int i) { return "user" + std::to_string(i); }

rpc::Message MakeReq(uint64_t id, const std::string& user) {
  Bytes payload(64, 0xAB);
  return rpc::Message::MakeRequest(
      id, "Obj.Put",
      {{"username", Value(user)}, {"payload", Value(std::move(payload))}});
}

void SeedUsers(EnginePool& pool, int users) {
  rpc::Table* acl =
      pool.FindTemplateInstance("Acl")->FindTable("ac_tab");
  for (int i = 0; i < users; ++i) {
    ASSERT_TRUE(acl->Insert({Value(UserName(i)), Value("W")}).ok());
  }
}

TEST(EnginePool, SameKeyAlwaysLandsOnTheSameWorker) {
  EnginePool::Config config;
  config.workers = 4;
  config.shard_key_field = "username";
  EnginePool pool(LogAclElements(), {}, config);
  SeedUsers(pool, 32);
  ASSERT_TRUE(pool.Start().ok());

  // Routing is a pure function of the key.
  std::map<std::string, int> routed;
  for (int i = 0; i < 32; ++i) {
    const std::string user = UserName(i);
    const int w = pool.WorkerOfKey(Value(user));
    EXPECT_EQ(w, pool.WorkerOfKey(Value(user)));
    routed[user] = w;
  }
  uint64_t id = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(pool.Submit(MakeReq(++id, UserName(i))), routed[UserName(i)]);
    }
  }
  pool.Stop();

  // Every log row landed on the worker its username routes to, and each
  // worker's ACL shard held exactly the rows its routed users needed (no
  // message was denied).
  EXPECT_EQ(pool.processed(), 50u * 32u);
  EXPECT_EQ(pool.dropped(), 0u);
  for (int w = 0; w < pool.workers(); ++w) {
    const rpc::Table* log =
        pool.WorkerInstance(w, kLoggingIdx).FindTable("log_tab");
    ASSERT_NE(log, nullptr);
    for (const rpc::Row& row : log->rows()) {
      EXPECT_EQ(routed[std::string(row[1].AsText())], w)
          << "log row for " << row[1].AsText() << " on wrong worker";
    }
  }
}

TEST(EnginePool, ShardTotalsMergeToTheUnshardedResult) {
  constexpr int kUsers = 48;     // seeded with W permission
  constexpr int kStrangers = 8;  // not in ac_tab -> denied
  constexpr uint64_t kMessages = 4'000;

  auto run = [&](int workers) {
    EnginePool::Config config;
    config.workers = workers;
    config.shard_key_field = "username";
    auto pool = std::make_unique<EnginePool>(LogAclElements(),
                                             std::vector<int>{}, config);
    SeedUsers(*pool, kUsers);
    EXPECT_TRUE(pool->Start().ok());
    for (uint64_t id = 1; id <= kMessages; ++id) {
      pool->Submit(MakeReq(
          id, UserName(static_cast<int>(id % (kUsers + kStrangers)))));
    }
    pool->Stop();
    return pool;
  };

  auto one = run(1);
  auto four = run(4);

  EXPECT_EQ(one->processed(), kMessages);
  EXPECT_EQ(four->processed(), kMessages);
  EXPECT_EQ(one->dropped(), four->dropped());
  EXPECT_GT(four->dropped(), 0u);

  // Merge-on-read: the union of the 4 workers' shards is byte-for-byte the
  // single-worker state (log rows are keyed by message id + user, so the
  // content hash is order-insensitive and partition-invariant).
  for (size_t e : {kLoggingIdx, kAclIdx}) {
    EXPECT_EQ(four->MergedStateHash(e), one->MergedStateHash(e));
    auto merged = four->MergedInstance(e);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ((*merged)->StateContentHash(), one->MergedStateHash(e));
  }
  // The ACL table is read-only traffic: sharding round-trips it exactly
  // (the PR 4 migration invariant, live).
  auto merged_acl = four->MergedInstance(kAclIdx);
  ASSERT_TRUE(merged_acl.ok());
  const rpc::Table* acl = (*merged_acl)->FindTable("ac_tab");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->RowCount(), static_cast<size_t>(kUsers));
  // Log rows partition exactly: per-worker row counts sum to the total.
  size_t log_rows = 0;
  for (int w = 0; w < four->workers(); ++w) {
    log_rows +=
        four->WorkerInstance(w, kLoggingIdx).FindTable("log_tab")->RowCount();
  }
  EXPECT_EQ(log_rows, kMessages);
}

TEST(EnginePool, StateHashInvariantAfterStart) {
  EnginePool::Config config;
  config.workers = 3;
  config.shard_key_field = "username";
  EnginePool pool(LogAclElements(), {}, config);
  SeedUsers(pool, 100);
  const uint64_t seeded_hash =
      pool.FindTemplateInstance("Acl")->StateContentHash();
  ASSERT_TRUE(pool.Start().ok());
  // Sharding the seed state across workers loses nothing.
  EXPECT_EQ(pool.MergedStateHash(kAclIdx), seeded_hash);
  pool.Stop();
}

TEST(EnginePool, MissingShardKeyFallsBackToIdRouting) {
  EnginePool::Config config;
  config.workers = 4;
  config.shard_key_field = "no_such_field";
  EnginePool pool(LogAclElements(), {}, config);
  SeedUsers(pool, 4);
  ASSERT_TRUE(pool.Start().ok());
  std::vector<int> seen(4, 0);
  for (uint64_t id = 1; id <= 256; ++id) {
    const int w = pool.Submit(MakeReq(id, UserName(static_cast<int>(id % 4))));
    EXPECT_EQ(w, pool.WorkerOfKey(Value(static_cast<int64_t>(id))));
    ++seen[static_cast<size_t>(w)];
  }
  pool.Stop();
  // Id hashing spreads load across every worker.
  for (int count : seen) EXPECT_GT(count, 0);
}

// --- Live reconfiguration (docs/RECONFIG.md) ----------------------------------

constexpr size_t kQuotaIdx = 2;

// Logging + Acl + Quota: an append-only log, a read-only keyed table, and a
// keyed table mutated on every message — the three state shapes the live
// migration protocol must carry (log rows stay put, ACL rows bulk-copy,
// quota rows need the mutation delta).
std::vector<std::shared_ptr<const ir::ElementIr>> LogAclQuotaElements() {
  auto parsed =
      dsl::ParseProgram(std::string(elements::AclTableSql()) +
                        std::string(elements::LogTableSql()) +
                        std::string(elements::QuotaTableSql()) +
                        std::string(elements::LoggingSql()) +
                        std::string(elements::AclSql()) +
                        std::string(elements::QuotaSql()));
  auto lowered = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(lowered.ok());
  return {lowered->FindElement("Logging"), lowered->FindElement("Acl"),
          lowered->FindElement("Quota")};
}

void SeedQuota(EnginePool& pool, int users, int64_t remaining) {
  rpc::Table* quota =
      pool.FindTemplateInstance("Quota")->FindTable("quota");
  for (int i = 0; i < users; ++i) {
    ASSERT_TRUE(quota->Insert({Value(UserName(i)), Value(remaining)}).ok());
  }
}

TEST(EnginePoolReconfig, LiveSlotMigrationUnderTrafficIsLossless) {
  constexpr int kUsers = 32;
  constexpr uint64_t kMessages = 12'000;

  // Reference: the same traffic through one worker, no migrations.
  uint64_t ref_hash[3];
  {
    EnginePool::Config config;
    config.workers = 1;
    config.shard_key_field = "username";
    EnginePool ref(LogAclQuotaElements(), {}, config);
    SeedUsers(ref, kUsers);
    SeedQuota(ref, kUsers, 1'000);
    ASSERT_TRUE(ref.Start().ok());
    for (uint64_t id = 1; id <= kMessages; ++id) {
      ref.Submit(MakeReq(id, UserName(static_cast<int>(id % kUsers))));
    }
    ref.Stop();
    ASSERT_EQ(ref.processed(), kMessages);
    ASSERT_EQ(ref.dropped(), 0u);
    for (size_t e = 0; e < 3; ++e) ref_hash[e] = ref.MergedStateHash(e);
  }

  EnginePool::Config config;
  config.workers = 4;
  config.shard_key_field = "username";
  // Small rings keep the control-op barriers short: a ctrl op waits for the
  // ring backlog submitted before it, so backlog depth bounds each phase.
  config.ring_capacity = 256;
  EnginePool pool(LogAclQuotaElements(), {}, config);
  SeedUsers(pool, kUsers);
  SeedQuota(pool, kUsers, 1'000);
  ASSERT_TRUE(pool.Start().ok());

  // Migrate the slots of a handful of live users while their traffic (and
  // everyone else's) keeps flowing; each Begin fires mid-stream, as soon as
  // its window opens and the previous migration finished.
  const std::vector<uint64_t> start_at = {1'000, 4'000, 7'000, 10'000};
  std::vector<int> moved_slot;
  std::vector<int> moved_to;
  size_t next_mig = 0;
  for (uint64_t id = 1; id <= kMessages; ++id) {
    pool.Submit(MakeReq(id, UserName(static_cast<int>(id % kUsers))));
    if (next_mig < start_at.size() && id >= start_at[next_mig] &&
        !pool.MigrationActive()) {
      const int slot = EnginePool::SlotOfKey(
          Value(UserName(static_cast<int>(next_mig))));
      const int to = (pool.WorkerOfSlot(slot) + 1) % pool.workers();
      ASSERT_TRUE(pool.BeginSlotMigration(slot, to).ok());
      moved_slot.push_back(slot);
      moved_to.push_back(to);
      ++next_mig;
    }
    pool.PumpMigration();
  }
  while (pool.MigrationActive()) {
    pool.PumpMigration();
    std::this_thread::yield();
  }
  pool.Stop();
  ASSERT_EQ(next_mig, start_at.size()) << "every migration should have begun";

  // Zero drops, every message processed exactly once, and the merged state
  // is byte-for-byte the no-migration run — rows moved, none lost or
  // double-applied.
  EXPECT_EQ(pool.processed(), kMessages);
  EXPECT_EQ(pool.dropped(), 0u);
  for (size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(pool.MergedStateHash(e), ref_hash[e]) << "element " << e;
  }
  // The flips stuck: each moved slot routes to its destination.
  for (size_t i = 0; i < moved_slot.size(); ++i) {
    EXPECT_EQ(pool.WorkerOfSlot(moved_slot[i]), moved_to[i]);
  }
  // The last migration's stats describe a real live cutover: state moved in
  // bulk before the blackout window, which stayed finite.
  const EnginePool::LiveMigrationStats& stats = pool.migration_stats();
  EXPECT_EQ(stats.slot, moved_slot.back());
  EXPECT_EQ(stats.to, moved_to.back());
  EXPECT_GT(stats.bulk_bytes, 0u);
  EXPECT_GE(stats.blackout_ns, 0);
}

TEST(EnginePoolReconfig, ProgramHotSwapUnderTrafficKeepsState) {
  constexpr int kUsers = 16;
  constexpr uint64_t kBefore = 2'000;
  constexpr uint64_t kAfter = 2'000;

  EnginePool::Config config;
  config.workers = 2;
  config.shard_key_field = "username";
  EnginePool pool(LogAclElements(), {}, config);
  SeedUsers(pool, kUsers);
  ASSERT_TRUE(pool.Start().ok());
  ASSERT_TRUE(pool.whole_chain_compiled());
  const uint64_t v0 = pool.program_version();
  EXPECT_GT(v0, 0u);

  for (uint64_t id = 1; id <= kBefore; ++id) {
    pool.Submit(MakeReq(id, UserName(static_cast<int>(id % kUsers))));
  }

  // Same state tables, new logic: the swapped Acl only admits permission
  // 'X', which nobody holds — a behavioral flip that proves which program
  // each message ran under.
  auto parsed = dsl::ParseProgram(
      std::string(elements::AclTableSql()) +
      std::string(elements::LogTableSql()) +
      std::string(elements::LoggingSql()) + R"(
ELEMENT Acl ON REQUEST {
  INPUT (username TEXT, payload BYTES);
  ON DROP ABORT 'lockdown';
  SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
    WHERE ac_tab.permission = 'X';
}
)");
  auto lowered = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok());
  ASSERT_TRUE(pool.SwapProgram({lowered->FindElement("Logging"),
                                lowered->FindElement("Acl")})
                  .ok());
  EXPECT_GT(pool.program_version(), v0);

  // Messages submitted after SwapProgram returns are behind each worker's
  // swap barrier, so every one runs the new program: all denied.
  for (uint64_t id = kBefore + 1; id <= kBefore + kAfter; ++id) {
    pool.Submit(MakeReq(id, UserName(static_cast<int>(id % kUsers))));
  }
  pool.Drain();
  EXPECT_TRUE(pool.SwapComplete());
  pool.Stop();

  EXPECT_EQ(pool.processed(), kBefore + kAfter);
  EXPECT_EQ(pool.dropped(), kAfter);
  // State carried over the swap: the ACL rows survived, and Logging (which
  // runs before the drop) kept appending across the boundary.
  auto merged_acl = pool.MergedInstance(kAclIdx);
  ASSERT_TRUE(merged_acl.ok());
  EXPECT_EQ((*merged_acl)->FindTable("ac_tab")->RowCount(),
            static_cast<size_t>(kUsers));
  size_t log_rows = 0;
  for (int w = 0; w < pool.workers(); ++w) {
    log_rows +=
        pool.WorkerInstance(w, kLoggingIdx).FindTable("log_tab")->RowCount();
  }
  EXPECT_EQ(log_rows, kBefore + kAfter);
}

TEST(EnginePoolReconfig, IncompatibleSwapIsRejectedAndHarmless) {
  constexpr int kUsers = 8;
  EnginePool::Config config;
  config.workers = 2;
  config.shard_key_field = "username";
  EnginePool pool(LogAclElements(), {}, config);
  SeedUsers(pool, kUsers);
  ASSERT_TRUE(pool.Start().ok());
  const uint64_t v0 = pool.program_version();

  // The new chain renames/reshapes ac_tab: state cannot carry over, so the
  // swap must be rejected with the running program untouched.
  auto parsed = dsl::ParseProgram(
      "STATE TABLE ac_tab (username TEXT PRIMARY KEY, permission TEXT, "
      "level INT);\n" +
      std::string(elements::LogTableSql()) +
      std::string(elements::LoggingSql()) + R"(
ELEMENT Acl ON REQUEST {
  INPUT (username TEXT, payload BYTES);
  ON DROP ABORT 'permission denied';
  SELECT * FROM input JOIN ac_tab ON input.username = ac_tab.username
    WHERE ac_tab.permission = 'W';
}
)");
  auto lowered = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok());
  const Status swap = pool.SwapProgram({lowered->FindElement("Logging"),
                                        lowered->FindElement("Acl")});
  ASSERT_FALSE(swap.ok());
  EXPECT_EQ(swap.error().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pool.program_version(), v0);

  // The pool keeps serving under the old program.
  for (uint64_t id = 1; id <= 512; ++id) {
    pool.Submit(MakeReq(id, UserName(static_cast<int>(id % kUsers))));
  }
  pool.Stop();
  EXPECT_EQ(pool.processed(), 512u);
  EXPECT_EQ(pool.dropped(), 0u);
}

// --- Fused concurrent parallel groups ----------------------------------------

std::vector<std::shared_ptr<const ir::ElementIr>> IndependentElements() {
  // The bench_parallel chain: three field-disjoint transforms the compiler
  // proves parallelizable (one group).
  const char* kProgram = R"(
ELEMENT Encrypt ON REQUEST {
  INPUT (payload BYTES);
  SELECT *, encrypt(payload, 'key') AS payload FROM input;
}
ELEMENT CompressBlob ON REQUEST {
  INPUT (blob BYTES);
  SELECT *, compress(blob) AS blob FROM input;
}
ELEMENT UserDigest ON REQUEST {
  INPUT (username TEXT);
  SELECT *, hash(username) AS user_digest FROM input;
}
)";
  auto parsed = dsl::ParseProgram(kProgram);
  auto lowered = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(lowered.ok());
  return {lowered->FindElement("Encrypt"), lowered->FindElement("CompressBlob"),
          lowered->FindElement("UserDigest")};
}

rpc::Message MakeIndepReq(uint64_t id) {
  Bytes payload(256), blob(256);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((id + i) % 251);
    blob[i] = static_cast<uint8_t>(i % 13);
  }
  return rpc::Message::MakeRequest(
      id, "Indep.Call",
      {{"username", Value("alice")},
       {"payload", Value(std::move(payload))},
       {"blob", Value(std::move(blob))}});
}

TEST(EnginePoolStress, ConcurrentGroupMatchesSequentialExecution) {
  auto elements = IndependentElements();
  std::vector<const ir::ElementIr*> raw;
  for (const auto& e : elements) raw.push_back(e.get());
  const std::vector<int> groups = ir::PartitionIntoParallelGroups(raw);
  ASSERT_EQ(groups, (std::vector<int>{0, 0, 0}))
      << "effect analysis should prove the chain one parallel group";

  constexpr uint64_t kMessages = 2'000;
  auto run = [&](EnginePool::GroupMode mode) {
    EnginePool::Config config;
    config.workers = 1;
    config.group_mode = mode;
    std::map<uint64_t, rpc::Message> outputs;
    config.on_done = [&outputs](int, const rpc::Message& m,
                                const ir::ProcessResult&) {
      outputs.emplace(m.id(), m);  // single worker: no synchronization needed
    };
    EnginePool pool(elements, groups, config);
    EXPECT_EQ(pool.whole_chain_compiled(),
              mode == EnginePool::GroupMode::kSequential);
    EXPECT_TRUE(pool.Start().ok());
    for (uint64_t id = 1; id <= kMessages; ++id) {
      pool.Submit(MakeIndepReq(id));
    }
    pool.Stop();
    EXPECT_EQ(pool.processed(), kMessages);
    EXPECT_EQ(pool.dropped(), 0u);
    return outputs;
  };

  auto sequential = run(EnginePool::GroupMode::kSequential);
  auto concurrent = run(EnginePool::GroupMode::kConcurrent);
  ASSERT_EQ(sequential.size(), concurrent.size());
  for (const auto& [id, seq_msg] : sequential) {
    const auto it = concurrent.find(id);
    ASSERT_NE(it, concurrent.end());
    const rpc::Message& con_msg = it->second;
    for (const rpc::Field& f : seq_msg.fields()) {
      const Value* v = con_msg.FindField(f.name());
      ASSERT_NE(v, nullptr) << f.name();
      EXPECT_EQ(f.value.CompareTo(*v), 0)
          << "field " << f.name() << " diverged on message " << id;
    }
  }
}

TEST(EnginePoolStress, ManyWorkersManyMessages) {
  constexpr uint64_t kMessages = 20'000;
  EnginePool::Config config;
  config.workers = 4;
  config.shard_key_field = "username";
  config.ring_capacity = 128;
  EnginePool pool(LogAclElements(), {}, config);
  SeedUsers(pool, 64);
  ASSERT_TRUE(pool.Start().ok());
  for (uint64_t id = 1; id <= kMessages; ++id) {
    pool.Submit(MakeReq(id, UserName(static_cast<int>(id % 64))));
  }
  pool.Drain();
  EXPECT_EQ(pool.processed(), kMessages);
  pool.Stop();
  EXPECT_EQ(pool.dropped(), 0u);
  size_t log_rows = 0;
  for (int w = 0; w < pool.workers(); ++w) {
    log_rows +=
        pool.WorkerInstance(w, kLoggingIdx).FindTable("log_tab")->RowCount();
  }
  EXPECT_EQ(log_rows, kMessages);
}

TEST(EnginePoolStress, BurstDrainUnderConcurrentProducer) {
  // The burst drain (TryPopBurst + ChainExecutor::ProcessBurst) racing a
  // live producer, across burst sizes including the kMaxBurstLanes maximum
  // and a deliberately tiny ring that forces constant partial bursts and
  // producer backpressure. Totals and per-worker log shards must come out
  // exact; the TSan job proves the drain publishes done/dropped/exec_ns
  // without races.
  for (const size_t burst_size : {4u, 32u, 64u}) {
    SCOPED_TRACE("burst_size=" + std::to_string(burst_size));
    constexpr uint64_t kMessages = 20'000;
    EnginePool::Config config;
    config.workers = 4;
    config.shard_key_field = "username";
    config.ring_capacity = 64;  // smaller than 2 full bursts: partial drains
    config.burst_size = burst_size;
    config.measure_exec = true;  // timed window around the burst path
    EnginePool pool(LogAclElements(), {}, config);
    SeedUsers(pool, 64);
    ASSERT_TRUE(pool.Start().ok());
    ASSERT_TRUE(pool.whole_chain_compiled());
    for (uint64_t id = 1; id <= kMessages; ++id) {
      pool.Submit(MakeReq(id, UserName(static_cast<int>(id % 64))));
    }
    pool.Drain();
    EXPECT_EQ(pool.processed(), kMessages);
    pool.Stop();
    EXPECT_EQ(pool.dropped(), 0u);
    size_t log_rows = 0;
    int64_t exec_ns = 0;
    for (int w = 0; w < pool.workers(); ++w) {
      log_rows +=
          pool.WorkerInstance(w, kLoggingIdx).FindTable("log_tab")->RowCount();
      exec_ns += pool.worker_exec_ns(w);
    }
    EXPECT_EQ(log_rows, kMessages);
    EXPECT_GT(exec_ns, 0);
  }
}

}  // namespace
}  // namespace adn
