// Burst-mode data plane: differential parity burst ≡ scalar ≡ interpreter.
//
// The SoA wavefront in program_burst.cc reorders execution from
// message-major to instruction-major; these tests prove the reordering is
// unobservable: outcomes, abort messages, message mutations, per-element
// processed/dropped counters, nonce/RNG streams and table content hashes
// must match the scalar tier bit for bit — for randomized chains, every
// burst size, and mid-burst drop/abort lanes. Ring burst semantics and the
// pool/engine wiring are covered here too; the concurrent-producer TSan
// cases live in test_threads.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "compiler/chain_compile.h"
#include "compiler/lower.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/program.h"
#include "mrpc/engine.h"
#include "mrpc/engine_pool.h"
#include "mrpc/ring.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adn {
namespace {

using ir::ProcessOutcome;
using ir::ProcessResult;
using mrpc::EnginePool;
using mrpc::SpscRing;
using rpc::Message;
using rpc::Value;

// --- SpscRing burst operations ----------------------------------------------

TEST(RingBurst, PopBurstDrainsFifoAndRespectsMax) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.TryPush(i));
  int out[8] = {};
  EXPECT_EQ(ring.TryPopBurst(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.TryPopBurst(out, 8), 2u);  // only 2 left
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(ring.TryPopBurst(out, 8), 0u);  // empty
}

TEST(RingBurst, PushBurstAcceptsUpToFreeSpace) {
  SpscRing<int> ring(4);  // capacity rounds to 4
  int in[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushBurst(in, 6), 4u);  // only 4 slots
  EXPECT_TRUE(ring.full());
  int out[6] = {};
  EXPECT_EQ(ring.TryPopBurst(out, 6), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  // The unaccepted tail was left untouched for retry.
  EXPECT_EQ(in[4], 4);
  EXPECT_EQ(in[5], 5);
}

TEST(RingBurst, BurstOpsWrapAroundTheIndexMask) {
  SpscRing<int> ring(4);
  int out[4] = {};
  int next = 0;
  int expect = 0;
  // Drive the indexes far past one lap with mixed burst sizes.
  for (int round = 0; round < 50; ++round) {
    int in[3] = {next, next + 1, next + 2};
    const size_t pushed = ring.TryPushBurst(in, 3);
    next += static_cast<int>(pushed);
    const size_t popped = ring.TryPopBurst(out, (round % 3) + 1);
    for (size_t i = 0; i < popped; ++i) EXPECT_EQ(out[i], expect++);
  }
}

TEST(RingBurst, OutParameterPopMatchesOptionalPop) {
  SpscRing<std::string> ring(8);
  ASSERT_TRUE(ring.TryPush(std::string("a")));
  ASSERT_TRUE(ring.TryPush(std::string("b")));
  std::string out;
  EXPECT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, "a");
  auto opt = ring.TryPop();
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, "b");
  out = "untouched";
  EXPECT_FALSE(ring.TryPop(out));
  EXPECT_EQ(out, "untouched");  // empty pop leaves the out-param alone
}

// --- Helpers -----------------------------------------------------------------

std::shared_ptr<const ir::ElementIr> LowerNamed(const std::string& source,
                                                const std::string& name) {
  auto parsed = dsl::ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto program = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto element = program->FindElement(name);
  EXPECT_NE(element, nullptr);
  return element;
}

// The fig5 chain: Logging (INSERT), Acl (PK join + abort drop), Fault
// (random() drop). Covers a mutated table, a prefetchable read-only join,
// mid-burst aborts, and a per-element RNG stream — and is exactly the shape
// the burst analysis must prove safe.
std::vector<std::shared_ptr<const ir::ElementIr>> Fig5Elements() {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::LogTableSql()) +
                                  std::string(elements::LoggingSql()) +
                                  std::string(elements::AclSql()) +
                                  std::string(elements::FaultSql()));
  auto lowered = compiler::LowerProgram(*parsed);
  EXPECT_TRUE(lowered.ok());
  return {lowered->FindElement("Logging"), lowered->FindElement("Acl"),
          lowered->FindElement("Fault")};
}

void SeedAcl(ir::ElementInstance& inst) {
  rpc::Table* acl = inst.FindTable("ac_tab");
  if (acl == nullptr) return;
  ASSERT_TRUE(acl->Insert({Value("alice"), Value("W")}).ok());
  ASSERT_TRUE(acl->Insert({Value("bob"), Value("R")}).ok());
  ASSERT_TRUE(acl->Insert({Value("carol"), Value("W")}).ok());
}

Message FigMessage(Rng& rng, uint64_t id) {
  static const char* kUsers[] = {"alice", "bob", "carol", "mallory"};
  Bytes payload(rng.NextBelow(64), 0xAB);
  return Message::MakeRequest(
      id, "Obj.Put",
      {{"username", Value(std::string(kUsers[rng.NextBelow(4)]))},
       {"payload", Value(std::move(payload))}});
}

// Run `stream` through executor A one message at a time and through
// executor B in bursts of `burst`, then compare everything observable.
void ExpectBurstMatchesScalar(
    const std::vector<std::shared_ptr<const ir::ElementIr>>& elements,
    std::vector<Message> stream, size_t burst, uint64_t seed) {
  std::vector<std::unique_ptr<ir::ElementInstance>> scalar_state;
  std::vector<std::unique_ptr<ir::ElementInstance>> burst_state;
  std::vector<ir::ElementInstance*> scalar_ptrs, burst_ptrs;
  for (const auto& e : elements) {
    scalar_state.push_back(
        std::make_unique<ir::ElementInstance>(e, seed + scalar_state.size()));
    burst_state.push_back(
        std::make_unique<ir::ElementInstance>(e, seed + burst_state.size()));
    SeedAcl(*scalar_state.back());
    SeedAcl(*burst_state.back());
    scalar_ptrs.push_back(scalar_state.back().get());
    burst_ptrs.push_back(burst_state.back().get());
  }
  auto program = compiler::CompileChainProgram(elements);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ir::ChainExecutor scalar_exec(program.value(), scalar_ptrs);
  ir::ChainExecutor burst_exec(program.value(), burst_ptrs);

  std::vector<Message> scalar_msgs = stream;
  std::vector<Message>& burst_msgs = stream;
  std::vector<ProcessResult> scalar_results(stream.size());
  std::vector<ProcessResult> burst_results(stream.size());
  for (size_t i = 0; i < scalar_msgs.size(); ++i) {
    scalar_results[i] = scalar_exec.Process(scalar_msgs[i], /*now_ns=*/7);
  }
  for (size_t off = 0; off < burst_msgs.size(); off += burst) {
    const size_t n = std::min(burst, burst_msgs.size() - off);
    burst_exec.ProcessBurst(burst_msgs.data() + off, n, /*now_ns=*/7,
                            burst_results.data() + off);
  }

  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(scalar_results[i].outcome, burst_results[i].outcome)
        << "burst=" << burst << " message " << i;
    ASSERT_EQ(scalar_results[i].abort_message, burst_results[i].abort_message)
        << "burst=" << burst << " message " << i;
    ASSERT_EQ(scalar_msgs[i].DebugString(), burst_msgs[i].DebugString())
        << "burst=" << burst << " message " << i;
    EXPECT_EQ(scalar_msgs[i].destination(), burst_msgs[i].destination());
  }
  for (size_t e = 0; e < elements.size(); ++e) {
    EXPECT_EQ(scalar_state[e]->StateContentHash(),
              burst_state[e]->StateContentHash())
        << "burst=" << burst << " element " << e;
    EXPECT_EQ(scalar_state[e]->processed(), burst_state[e]->processed())
        << "burst=" << burst << " element " << e;
    EXPECT_EQ(scalar_state[e]->dropped(), burst_state[e]->dropped())
        << "burst=" << burst << " element " << e;
  }
}

// --- Burst executor: fig5 chain ----------------------------------------------

TEST(Burst, Fig5ChainIsVectorizableWithAPrefetchSite) {
  auto elements = Fig5Elements();
  std::vector<std::unique_ptr<ir::ElementInstance>> state;
  std::vector<ir::ElementInstance*> ptrs;
  for (const auto& e : elements) {
    state.push_back(std::make_unique<ir::ElementInstance>(e, 1));
    ptrs.push_back(state.back().get());
  }
  auto program = compiler::CompileChainProgram(elements);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ir::ChainExecutor exec(program.value(), ptrs);
  EXPECT_TRUE(exec.burst_vectorizable());
  // The ACL join (input.username = ac_tab.username) is the prefetch site.
  EXPECT_GE(exec.burst_prefetch_site_count(), 1u);
}

TEST(Burst, Fig5MatchesScalarAcrossBurstSizes) {
  auto elements = Fig5Elements();
  Rng rng(99);
  std::vector<Message> stream;
  for (uint64_t i = 0; i < 257; ++i) stream.push_back(FigMessage(rng, i));
  // mallory (ACL miss -> abort) and Fault's 5% random drop produce dead
  // lanes mid-burst at every size; 257 leaves a ragged tail chunk.
  for (size_t burst : {1u, 2u, 3u, 16u, 32u, 64u, 257u}) {
    SCOPED_TRACE("burst=" + std::to_string(burst));
    ExpectBurstMatchesScalar(elements, stream, burst, 1000);
  }
}

TEST(Burst, AllLanesDropStillMatches) {
  // Every message is mallory: every lane aborts at the ACL element.
  auto elements = Fig5Elements();
  std::vector<Message> stream;
  for (uint64_t i = 0; i < 64; ++i) {
    stream.push_back(Message::MakeRequest(
        i, "Obj.Put",
        {{"username", Value("mallory")}, {"payload", Value(Bytes(8, 1))}}));
  }
  ExpectBurstMatchesScalar(elements, stream, 32, 77);
}

// --- Burst executor: randomized programs -------------------------------------

// Same shape as test_parity's generator. Most generated programs violate a
// burst-safety rule (several mutation sites on one table, UPDATE+JOIN mixes)
// and must take the transparent scalar fallback; the rest exercise the SoA
// wavefront — parity must hold either way, and the test asserts both paths
// actually occur across the corpus.
std::string RandomElementSource(Rng& rng) {
  auto num = [&](uint64_t lo, uint64_t hi) {
    return std::to_string(static_cast<int64_t>(lo + rng.NextBelow(hi - lo)));
  };
  std::string src =
      "STATE TABLE t (k INT PRIMARY KEY, v INT);\n"
      "STATE TABLE acc (rpc INT, x INT, y INT);\n"
      "ELEMENT Rand ON BOTH {\n"
      "  INPUT (a INT, b INT, username TEXT, payload BYTES);\n";
  switch (rng.NextBelow(3)) {
    case 0: break;
    case 1: src += "  ON DROP ABORT 'rand abort';\n"; break;
    case 2: src += "  ON DROP SILENT;\n"; break;
  }
  size_t statements = 2 + rng.NextBelow(3);
  for (size_t i = 0; i < statements; ++i) {
    switch (rng.NextBelow(6)) {
      case 0:
        src += "  SELECT *, a + " + num(1, 9) + " AS a, a * b AS b" +
               " FROM input WHERE a % " + num(2, 6) + " != " + num(0, 2) +
               ";\n";
        break;
      case 1:
        src += "  SELECT *, t.v AS b FROM input JOIN t ON a % 8 = t.k" +
               std::string(" WHERE t.v >= ") + num(0, 4) + ";\n";
        break;
      case 2:
        src += "  SELECT *, len(payload) + b AS b FROM input WHERE b >= " +
               num(0, 30) + " OR username = 'u1';\n";
        break;
      case 3:
        src += "  INSERT INTO acc VALUES (rpc_id(), a, b);\n";
        break;
      case 4:
        src += "  UPDATE t SET v = v + " + num(1, 5) +
               " WHERE k = input.a % 8;\n";
        break;
      case 5:
        src += "  DELETE FROM t WHERE v < " + num(0, 3) + ";\n";
        break;
    }
  }
  src += "}\n";
  return src;
}

void SeedJoinTable(ir::ElementInstance& inst) {
  rpc::Table* t = inst.FindTable("t");
  if (t == nullptr) return;
  for (int64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(t->Insert({Value(k), Value((k * 7) % 5)}).ok());
  }
}

TEST(Burst, RandomProgramsMatchScalarAndInterpreter) {
  Rng meta(4242);
  int vectorized = 0, fallback = 0;
  for (int round = 0; round < 40; ++round) {
    const std::string src = RandomElementSource(meta);
    SCOPED_TRACE(src);
    auto code = LowerNamed(src, "Rand");
    const uint64_t seed = 500 + static_cast<uint64_t>(round);

    ir::ElementInstance interp_state(code, seed);
    ir::ElementInstance scalar_state(code, seed);
    ir::ElementInstance burst_state(code, seed);
    SeedJoinTable(interp_state);
    SeedJoinTable(scalar_state);
    SeedJoinTable(burst_state);

    auto program = compiler::CompileElementProgram(*code);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ir::ChainExecutor scalar_exec(program.value(), {&scalar_state});
    ir::ChainExecutor burst_exec(program.value(), {&burst_state});
    if (burst_exec.burst_vectorizable()) {
      ++vectorized;
    } else {
      ++fallback;
    }

    Rng msgs(seed * 13 + 1);
    const size_t burst = 1 + msgs.NextBelow(64);
    std::vector<Message> stream;
    for (uint64_t i = 0; i < 96; ++i) {
      stream.push_back(Message::MakeRequest(
          i, "M",
          {{"a", Value(static_cast<int64_t>(msgs.NextBelow(64)))},
           {"b", Value(static_cast<int64_t>(msgs.NextBelow(100)) - 50)},
           {"username", Value("u" + std::to_string(msgs.NextBelow(3)))},
           {"payload", Value(Bytes(msgs.NextBelow(9), 0x5a))}}));
    }
    std::vector<Message> interp_msgs = stream;
    std::vector<Message> scalar_msgs = stream;
    std::vector<ProcessResult> burst_results(stream.size());
    for (size_t off = 0; off < stream.size(); off += burst) {
      const size_t n = std::min(burst, stream.size() - off);
      burst_exec.ProcessBurst(stream.data() + off, n, /*now_ns=*/3,
                              burst_results.data() + off);
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      const ProcessResult ri = interp_state.Process(interp_msgs[i], 3);
      const ProcessResult rs = scalar_exec.Process(scalar_msgs[i], 3);
      ASSERT_EQ(rs.outcome, burst_results[i].outcome)
          << "burst=" << burst << " message " << i;
      ASSERT_EQ(rs.abort_message, burst_results[i].abort_message);
      ASSERT_EQ(scalar_msgs[i].DebugString(), stream[i].DebugString())
          << "burst=" << burst << " message " << i;
      ASSERT_EQ(ri.outcome, rs.outcome) << "message " << i;
      ASSERT_EQ(interp_msgs[i].DebugString(), scalar_msgs[i].DebugString());
    }
    EXPECT_EQ(scalar_state.StateContentHash(), burst_state.StateContentHash());
    EXPECT_EQ(interp_state.StateContentHash(), burst_state.StateContentHash());
    EXPECT_EQ(scalar_state.processed(), burst_state.processed());
    EXPECT_EQ(scalar_state.dropped(), burst_state.dropped());
  }
  // The corpus must exercise both the wavefront and the fallback, or the
  // test is weaker than it claims.
  EXPECT_GT(vectorized, 0);
  EXPECT_GT(fallback, 0);
}

// --- EngineChain (single-threaded engine tier) -------------------------------

TEST(Burst, EngineChainBurstMatchesScalarChain) {
  auto elements = Fig5Elements();
  auto make_chain = [&](mrpc::EngineChain& chain) {
    for (const auto& e : elements) {
      auto stage = std::make_unique<mrpc::GeneratedStage>(e, 5);
      SeedAcl(stage->instance());
      chain.AddStage(std::move(stage));
    }
  };
  mrpc::EngineChain scalar_chain, burst_chain;
  make_chain(scalar_chain);
  make_chain(burst_chain);

  Rng rng(123);
  std::vector<Message> stream;
  for (uint64_t i = 0; i < 130; ++i) stream.push_back(FigMessage(rng, i));
  std::vector<Message> scalar_msgs = stream;
  std::vector<ProcessResult> burst_results(stream.size());
  std::vector<ProcessResult> scalar_results(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    scalar_results[i] = scalar_chain.Process(scalar_msgs[i], 0);
  }
  for (size_t off = 0; off < stream.size(); off += 32) {
    const size_t n = std::min<size_t>(32, stream.size() - off);
    burst_chain.ProcessBurst(stream.data() + off, n, 0,
                             burst_results.data() + off);
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(scalar_results[i].outcome, burst_results[i].outcome)
        << "message " << i;
    ASSERT_EQ(scalar_msgs[i].DebugString(), stream[i].DebugString());
  }
  EXPECT_EQ(scalar_chain.processed(), burst_chain.processed());
  EXPECT_EQ(scalar_chain.dropped(), burst_chain.dropped());
  for (size_t s = 0; s < scalar_chain.size(); ++s) {
    auto& a = static_cast<mrpc::GeneratedStage&>(scalar_chain.stage(s));
    auto& b = static_cast<mrpc::GeneratedStage&>(burst_chain.stage(s));
    EXPECT_EQ(a.instance().StateContentHash(),
              b.instance().StateContentHash())
        << "stage " << s;
  }
}

// --- EnginePool wiring -------------------------------------------------------

TEST(Burst, PoolBurstSizesProduceIdenticalStateAndCounts) {
  // One worker, deterministic routing: any burst size must yield exactly the
  // processed/dropped counts and table state of the per-message drain.
  auto run = [&](size_t burst_size) {
    auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                    std::string(elements::LogTableSql()) +
                                    std::string(elements::LoggingSql()) +
                                    std::string(elements::AclSql()) +
                                    std::string(elements::FaultSql()));
    auto lowered = compiler::LowerProgram(*parsed);
    EXPECT_TRUE(lowered.ok());
    std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
        lowered->FindElement("Logging"), lowered->FindElement("Acl"),
        lowered->FindElement("Fault")};
    EnginePool::Config config;
    config.workers = 1;
    config.shard_key_field = "username";
    config.burst_size = burst_size;
    config.seed = 17;
    EnginePool pool(elements, {}, config);
    SeedAcl(*pool.FindTemplateInstance("Acl"));
    EXPECT_TRUE(pool.Start().ok());
    Rng rng(55);
    for (uint64_t i = 0; i < 4000; ++i) pool.Submit(FigMessage(rng, i));
    pool.Stop();
    struct Totals {
      uint64_t processed, dropped;
      std::vector<uint64_t> hashes;
    } t{pool.processed(), pool.dropped(), {}};
    for (size_t e = 0; e < pool.element_count(); ++e) {
      t.hashes.push_back(pool.MergedStateHash(e));
    }
    return std::make_tuple(t.processed, t.dropped, t.hashes);
  };
  const auto scalar = run(1);
  for (size_t burst : {4u, 32u, 64u}) {
    SCOPED_TRACE("burst=" + std::to_string(burst));
    EXPECT_EQ(run(burst), scalar);
  }
}

TEST(Burst, ObsOnBurstMatchesObsOnScalarCountsAndState) {
  // The always-on telemetry contract: with metrics AND sampled tracing
  // enabled, the pool must still run the burst executor (no scalar
  // fallback), and burst-batched telemetry must not perturb execution —
  // processed/dropped counts, per-element state hashes, and the metric
  // rpcs_total all match the obs-on scalar (burst=1) run exactly.
  obs::SetEnabled(true);
  obs::Tracer::Default().SetTracingEnabled(true);
  obs::Tracer::Default().SetSampleEvery(8);
  auto run = [&](size_t burst_size) {
    obs::Tracer::Default().Clear();
    obs::EventRingRegistry::Default().Reset();
    obs::MetricsRegistry::Default().Reset();
    auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                    std::string(elements::LogTableSql()) +
                                    std::string(elements::LoggingSql()) +
                                    std::string(elements::AclSql()) +
                                    std::string(elements::FaultSql()));
    auto lowered = compiler::LowerProgram(*parsed);
    EXPECT_TRUE(lowered.ok());
    std::vector<std::shared_ptr<const ir::ElementIr>> elements = {
        lowered->FindElement("Logging"), lowered->FindElement("Acl"),
        lowered->FindElement("Fault")};
    EnginePool::Config config;
    config.workers = 1;
    config.shard_key_field = "username";
    config.burst_size = burst_size;
    config.seed = 17;
    config.processor = "obs-parity";
    EnginePool pool(elements, {}, config);
    SeedAcl(*pool.FindTemplateInstance("Acl"));
    EXPECT_TRUE(pool.Start().ok());
    Rng rng(55);
    for (uint64_t i = 0; i < 4000; ++i) pool.Submit(FigMessage(rng, i));
    pool.Drain();
    uint64_t rpcs_metric = 0;
    for (const obs::MetricSample& s :
         obs::MetricsRegistry::Default().Snapshot().samples) {
      if (s.name == "adn_chain_rpcs_total") {
        rpcs_metric += static_cast<uint64_t>(s.value);
      }
    }
    pool.Stop();
    std::vector<uint64_t> hashes;
    for (size_t e = 0; e < pool.element_count(); ++e) {
      hashes.push_back(pool.MergedStateHash(e));
    }
    return std::make_tuple(pool.processed(), pool.dropped(), rpcs_metric,
                           hashes);
  };
  const auto scalar = run(1);
  EXPECT_EQ(std::get<2>(scalar), 4000u);  // metrics counted every message
  for (size_t burst : {4u, 32u}) {
    SCOPED_TRACE("burst=" + std::to_string(burst));
    EXPECT_EQ(run(burst), scalar);
  }
  obs::Tracer::Default().Clear();
  obs::EventRingRegistry::Default().Reset();
  obs::MetricsRegistry::Default().Reset();
  obs::Tracer::Default().SetTracingEnabled(false);
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace adn
