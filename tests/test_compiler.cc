// Compiler tests: optimization passes (reordering, fusion, parallel
// grouping), header synthesis, backend feasibility + code emission, and the
// top-level Compile pipeline.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "dsl/parser.h"
#include "elements/library.h"
#include "ir/exec.h"

namespace adn::compiler {
namespace {

using rpc::Value;
using rpc::ValueType;

Result<CompiledProgram> CompileFig5() {
  Compiler compiler;
  return compiler.CompileSource(elements::Fig5ProgramSource(), {});
}

Result<CompiledProgram> CompileFig2() {
  Compiler compiler;
  return compiler.CompileSource(elements::Fig2ProgramSource(), {});
}

// --- Passes ------------------------------------------------------------------

TEST(Passes, Fig2ReordersAclBeforePayloadTransforms) {
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain* chain = program->FindChain("fig2");
  ASSERT_NE(chain, nullptr);
  // Original order: HashLb, Compress, Decompress, Acl. The ACL reads only
  // username and can drop; the payload transforms are expensive — the
  // optimizer hoists the ACL ahead of them (the paper's §3 reordering).
  std::vector<std::string> names;
  for (const auto& e : chain->elements) names.push_back(e.ir->name);
  auto pos = [&](const std::string& n) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i].find(n) != std::string::npos) return i;
    }
    return names.size();
  };
  EXPECT_LT(pos("Acl"), pos("Compress"));
  EXPECT_LT(pos("HashLb"), pos("Acl"));  // LB still first (it drops too)
  // A reorder report was emitted.
  bool reported = false;
  for (const auto& r : chain->pass_reports) {
    if (r.pass == "reorder-drop-early") reported = true;
  }
  EXPECT_TRUE(reported);
}

TEST(Passes, Fig5OrderPreserved) {
  // Logging writes state and Acl/Fault drop: no legal reorder exists, and
  // elements have distinct constraints so no fusion of Acl into others.
  auto program = CompileFig5();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain* chain = program->FindChain("fig5");
  ASSERT_NE(chain, nullptr);
  ASSERT_EQ(chain->elements.size(), 3u);
  EXPECT_EQ(chain->elements[0].ir->name, "Logging");
  EXPECT_EQ(chain->elements[1].ir->name, "Acl");
  EXPECT_EQ(chain->elements[2].ir->name, "Fault");
}

TEST(Passes, FusionMergesSameConstraintNeighbors) {
  const std::string source = R"(
    ELEMENT A ON REQUEST { INPUT (x INT); SELECT *, x + 1 AS a FROM input; }
    ELEMENT B ON REQUEST { INPUT (x INT); SELECT *, x + 2 AS b FROM input; }
    CHAIN c FOR CALLS s1 -> s2 { A, B }
  )";
  Compiler compiler;
  auto program = compiler.CompileSource(source, {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain* chain = program->FindChain("c");
  ASSERT_EQ(chain->elements.size(), 1u);
  EXPECT_EQ(chain->elements[0].ir->name, "A+B");
}

TEST(Passes, FusedElementBehavesLikeSequence) {
  auto parsed = dsl::ParseProgram(R"(
    ELEMENT A ON REQUEST { INPUT (x INT); SELECT *, x + 1 AS a FROM input; }
    ELEMENT B ON REQUEST { INPUT (x INT); SELECT *, x * 10 AS b FROM input; }
  )");
  ASSERT_TRUE(parsed.ok());
  auto lowered = LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok());
  auto fused = FuseElements(*lowered->elements[0], *lowered->elements[1]);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  ir::ElementInstance seq_a(lowered->elements[0], 1);
  ir::ElementInstance seq_b(lowered->elements[1], 1);
  ir::ElementInstance one(
      std::make_shared<const ir::ElementIr>(std::move(fused).value()), 1);

  rpc::Message m1 = rpc::Message::MakeRequest(1, "M", {{"x", Value(5)}});
  rpc::Message m2 = m1;
  ASSERT_EQ(seq_a.Process(m1, 0).outcome, ir::ProcessOutcome::kPass);
  ASSERT_EQ(seq_b.Process(m1, 0).outcome, ir::ProcessOutcome::kPass);
  ASSERT_EQ(one.Process(m2, 0).outcome, ir::ProcessOutcome::kPass);
  EXPECT_EQ(m2.GetFieldOrNull("a").AsInt(), m1.GetFieldOrNull("a").AsInt());
  EXPECT_EQ(m2.GetFieldOrNull("b").AsInt(), m1.GetFieldOrNull("b").AsInt());
}

TEST(Passes, FusionRefusesFiltersAndMixedDirections) {
  auto parsed = dsl::ParseProgram(R"(
    ELEMENT A ON REQUEST { INPUT (x INT); SELECT * FROM input; }
    ELEMENT B ON RESPONSE { INPUT (x INT); SELECT * FROM input; }
  )");
  auto lowered = LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok());
  EXPECT_FALSE(
      FuseElements(*lowered->elements[0], *lowered->elements[1]).ok());
}

TEST(Passes, DisabledPassesLeaveChainAlone) {
  Compiler compiler;
  CompileOptions options;
  options.passes.reorder_drop_early = false;
  options.passes.fuse_adjacent = false;
  options.passes.parallelize = false;
  auto program =
      compiler.CompileSource(elements::Fig2ProgramSource(), options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain* chain = program->FindChain("fig2");
  ASSERT_EQ(chain->elements.size(), 4u);
  EXPECT_EQ(chain->elements[0].ir->name, "HashLb");
  EXPECT_EQ(chain->elements[1].ir->name, "Compress");
  EXPECT_TRUE(chain->pass_reports.empty());
}

// --- Header synthesis -----------------------------------------------------------

TEST(Headers, MinimalFieldsPerLink) {
  // Chain: A reads x (drops), B reads y. App emits x, y, z and consumes all.
  const std::string source = R"(
    ELEMENT A ON REQUEST { INPUT (x INT); SELECT * FROM input WHERE x > 0; }
    ELEMENT B ON REQUEST { INPUT (y INT); SELECT * FROM input WHERE y > 0; }
    CHAIN c FOR CALLS s1 -> s2 { A, B }
  )";
  Compiler compiler;
  CompileOptions options;
  options.passes.fuse_adjacent = false;
  options.passes.reorder_drop_early = false;
  (void)options.request_schema.AddColumn({"x", ValueType::kInt, false});
  (void)options.request_schema.AddColumn({"y", ValueType::kInt, false});
  (void)options.request_schema.AddColumn({"z", ValueType::kText, false});
  auto program = compiler.CompileSource(source, options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain* chain = program->FindChain("c");
  ASSERT_EQ(chain->headers.link_specs.size(), 3u);
  // Link into A needs everything (A reads x; B reads y; app reads x,y,z).
  EXPECT_EQ(chain->headers.link_specs[0].fields.size(), 3u);
  // Link after B still carries x,y,z because the app consumes them all.
  EXPECT_EQ(chain->headers.link_specs[2].fields.size(), 3u);
}

TEST(Headers, AppReadsPruneDeadFields) {
  const std::string source = R"(
    ELEMENT A ON REQUEST { INPUT (x INT); SELECT * FROM input WHERE x > 0; }
    CHAIN c FOR CALLS s1 -> s2 { A }
  )";
  Compiler compiler;
  CompileOptions options;
  (void)options.request_schema.AddColumn({"x", ValueType::kInt, false});
  (void)options.request_schema.AddColumn({"debug", ValueType::kText, false});
  options.app_reads = {"x"};  // server never reads `debug`
  auto program = compiler.CompileSource(source, options);
  ASSERT_TRUE(program.ok());
  const CompiledChain* chain = program->FindChain("c");
  // After A, only x survives on the wire.
  ASSERT_EQ(chain->headers.link_specs[1].fields.size(), 1u);
  EXPECT_EQ(chain->headers.link_specs[1].fields[0].name, "x");
}

TEST(Headers, MissingFieldDiagnosed) {
  const std::string source = R"(
    ELEMENT A ON REQUEST { INPUT (x INT); SELECT * FROM input WHERE x > 0; }
    CHAIN c FOR CALLS s1 -> s2 { A }
  )";
  Compiler compiler;
  CompileOptions options;
  (void)options.request_schema.AddColumn({"y", ValueType::kInt, false});
  auto program = compiler.CompileSource(source, options);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.error().message().find("'x'"), std::string::npos);
}

TEST(Headers, EvolveSchemaTracksRewrites) {
  auto parsed = dsl::ParseProgram(std::string(elements::CompressSql()));
  auto lowered = LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok());
  rpc::Schema in;
  (void)in.AddColumn({"payload", ValueType::kBytes, false});
  auto out = EvolveSchema(in, *lowered->elements[0]);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(out->columns()[0].type, ValueType::kBytes);
}

TEST(Headers, LayeredStackIsMuchBigger) {
  EXPECT_GT(LayeredStackHeaderBytes(3), 200u);
  EXPECT_LT(rpc::HeaderSpec::kBaseHeaderBytes, 32u);
}

// --- Backend feasibility -----------------------------------------------------------

struct FeasibilityCase {
  const char* element;
  bool ebpf;
  bool p4;
};

class BackendMatrix : public ::testing::TestWithParam<FeasibilityCase> {};

TEST_P(BackendMatrix, MatchesExpectations) {
  auto parsed = dsl::ParseProgram(elements::FullLibrarySource());
  ASSERT_TRUE(parsed.ok());
  auto lowered = LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  auto element = lowered->FindElement(GetParam().element);
  ASSERT_NE(element, nullptr) << GetParam().element;
  EXPECT_EQ(CheckFeasible(*element, TargetPlatform::kEbpf).feasible,
            GetParam().ebpf)
      << CheckFeasible(*element, TargetPlatform::kEbpf).reason;
  EXPECT_EQ(CheckFeasible(*element, TargetPlatform::kP4Switch).feasible,
            GetParam().p4)
      << CheckFeasible(*element, TargetPlatform::kP4Switch).reason;
  // Native and SmartNIC always work.
  EXPECT_TRUE(CheckFeasible(*element, TargetPlatform::kNative).feasible);
  EXPECT_TRUE(CheckFeasible(*element, TargetPlatform::kSmartNic).feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Library, BackendMatrix,
    ::testing::Values(
        // Acl: PK-join + where over text equality -> eBPF map lookup OK,
        // P4 exact-match table OK.
        FeasibilityCase{"Acl", true, true},
        // Fault: random() < literal float compiles to integer threshold.
        FeasibilityCase{"Fault", true, true},
        // Logging: INSERT (state write) -> fine in eBPF (ring buffer),
        // impossible on P4 (switch tables are control-plane written).
        FeasibilityCase{"Logging", true, false},
        // HashLb: hash + PK join + metadata write -> both.
        FeasibilityCase{"HashLb", true, true},
        // Compression: no helper, payload rewrite -> neither.
        FeasibilityCase{"Compress", false, false},
        // Encryption: bounded-loop block cipher OK in eBPF, not P4.
        FeasibilityCase{"Encrypt", true, false},
        // Quota: UPDATE scan -> not in eBPF (verifier), not P4 (state write).
        FeasibilityCase{"Quota", false, false}),
    [](const auto& info) { return info.param.element; });

TEST(Backends, P4ParseDepthRejectsFarFields) {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::AclSql()));
  auto lowered = LowerProgram(*parsed);
  ASSERT_TRUE(lowered.ok());
  auto acl = lowered->elements[0];

  // Header layout 1: username first -> fits easily.
  rpc::HeaderSpec front;
  front.fields = {{"username", ValueType::kText, false},
                  {"payload", ValueType::kBytes, false}};
  // TEXT is variable length: switch parsers cannot use it, front or not.
  EXPECT_FALSE(
      CheckP4ParseDepth(*acl, front, 200).feasible);

  // An INT-keyed variant with the key up front fits; behind a payload, not.
  auto parsed2 = dsl::ParseProgram(R"(
    STATE TABLE keys (k INT PRIMARY KEY, v INT);
    ELEMENT E ON REQUEST {
      INPUT (k INT);
      SELECT * FROM input JOIN keys ON input.k = keys.k;
    }
  )");
  auto lowered2 = LowerProgram(*parsed2);
  ASSERT_TRUE(lowered2.ok());
  auto e = lowered2->elements[0];
  rpc::HeaderSpec ok_spec;
  ok_spec.fields = {{"k", ValueType::kInt, false},
                    {"payload", ValueType::kBytes, false}};
  EXPECT_TRUE(CheckP4ParseDepth(*e, ok_spec, 200).feasible);
  rpc::HeaderSpec bad_spec;
  bad_spec.fields = {{"payload", ValueType::kBytes, false},
                     {"k", ValueType::kInt, false}};
  EXPECT_FALSE(CheckP4ParseDepth(*e, bad_spec, 200).feasible);
}

TEST(Backends, HeaderSynthesisFrontLoadsSwitchFields) {
  // In fig2, HashLb is P4-feasible and reads object_id; the compiler must
  // put object_id ahead of the payload in the first link header.
  auto program = CompileFig2();
  ASSERT_TRUE(program.ok());
  const CompiledChain* chain = program->FindChain("fig2");
  const auto& fields = chain->headers.link_specs[0].fields;
  ASSERT_FALSE(fields.empty());
  size_t object_pos = fields.size(), payload_pos = fields.size();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == "object_id") object_pos = i;
    if (fields[i].name == "payload") payload_pos = i;
  }
  EXPECT_LT(object_pos, payload_pos);
}

TEST(Backends, CostEstimateOrdering) {
  auto parsed = dsl::ParseProgram(std::string(elements::AclTableSql()) +
                                  std::string(elements::AclSql()));
  auto lowered = LowerProgram(*parsed);
  auto acl = lowered->elements[0];
  const auto& model = sim::CostModel::Default();
  double native = EstimateCostNs(*acl, TargetPlatform::kNative, model, 64);
  double ebpf = EstimateCostNs(*acl, TargetPlatform::kEbpf, model, 64);
  double nic = EstimateCostNs(*acl, TargetPlatform::kSmartNic, model, 64);
  double p4 = EstimateCostNs(*acl, TargetPlatform::kP4Switch, model, 64);
  EXPECT_LT(ebpf, native);   // in-kernel avoids crossings
  EXPECT_GT(nic, native);    // slower cores
  EXPECT_LT(p4, native);     // fixed pipeline
}

TEST(Backends, PayloadSizeScalesUdfCost) {
  auto parsed = dsl::ParseProgram(std::string(elements::CompressSql()));
  auto lowered = LowerProgram(*parsed);
  auto compress = lowered->elements[0];
  const auto& model = sim::CostModel::Default();
  double small = EstimateCostNs(*compress, TargetPlatform::kNative, model, 64);
  double large =
      EstimateCostNs(*compress, TargetPlatform::kNative, model, 64 * 1024);
  EXPECT_GT(large, small + 50'000);
}

// --- Code emission --------------------------------------------------------------

TEST(Emission, EbpfCodeHasMapAndDropLogic) {
  auto program = CompileFig5();
  ASSERT_TRUE(program.ok());
  const CompiledChain* chain = program->FindChain("fig5");
  const CompiledElement* acl = nullptr;
  for (const auto& e : chain->elements) {
    if (e.ir->name == "Acl") acl = &e;
  }
  ASSERT_NE(acl, nullptr);
  ASSERT_TRUE(acl->ebpf.feasible) << acl->ebpf.reason;
  EXPECT_NE(acl->ebpf_code.find("BPF_HASH_MAP(ac_tab"), std::string::npos);
  EXPECT_NE(acl->ebpf_code.find("bpf_map_lookup_elem"), std::string::npos);
  EXPECT_NE(acl->ebpf_code.find("return ADN_DROP"), std::string::npos);
  EXPECT_NE(acl->ebpf_code.find("SEC(\"adn/Acl\")"), std::string::npos);
}

TEST(Emission, EbpfFloatLoweredToThreshold) {
  auto program = CompileFig5();
  ASSERT_TRUE(program.ok());
  const CompiledChain* chain = program->FindChain("fig5");
  const CompiledElement* fault = nullptr;
  for (const auto& e : chain->elements) {
    if (e.ir->name == "Fault") fault = &e;
  }
  ASSERT_NE(fault, nullptr);
  ASSERT_TRUE(fault->ebpf.feasible);
  EXPECT_NE(fault->ebpf_code.find("bpf_get_prandom_u32"), std::string::npos);
  EXPECT_NE(fault->ebpf_code.find("* 2^32"), std::string::npos);
}

TEST(Emission, P4CodeHasTableApply) {
  Compiler compiler;
  CompileOptions options;
  auto program = compiler.CompileSource(elements::Fig2ProgramSource(), options);
  ASSERT_TRUE(program.ok());
  const CompiledChain* chain = program->FindChain("fig2");
  const CompiledElement* lb = nullptr;
  for (const auto& e : chain->elements) {
    if (e.ir->name == "HashLb") lb = &e;
  }
  ASSERT_NE(lb, nullptr);
  ASSERT_TRUE(lb->p4.feasible) << lb->p4.reason;
  EXPECT_NE(lb->p4_code.find("table endpoints_t"), std::string::npos);
  EXPECT_NE(lb->p4_code.find("endpoints_t.apply()"), std::string::npos);
  EXPECT_NE(lb->p4_code.find("hdr.dst ="), std::string::npos);
}

TEST(Emission, Deterministic) {
  auto a = CompileFig5();
  auto b = CompileFig5();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->chains[0].elements.size(); ++i) {
    EXPECT_EQ(a->chains[0].elements[i].ebpf_code,
              b->chains[0].elements[i].ebpf_code);
  }
}

// --- Facade ------------------------------------------------------------------------

TEST(CompilerFacade, BadSourceReturnsError) {
  Compiler compiler;
  EXPECT_FALSE(compiler.CompileSource("ELEMENT {", {}).ok());
  EXPECT_FALSE(
      compiler.CompileSource("CHAIN c FOR CALLS a -> b { Nope }", {}).ok());
}

TEST(CompilerFacade, DerivedSchemaCoversAllInputs) {
  auto program = CompileFig5();
  ASSERT_TRUE(program.ok());
  const CompiledChain* chain = program->FindChain("fig5");
  EXPECT_NE(chain->request_schema.FindColumn("username"), nullptr);
  EXPECT_NE(chain->request_schema.FindColumn("payload"), nullptr);
}

TEST(CompilerFacade, FullLibraryCompiles) {
  Compiler compiler;
  auto program = compiler.CompileSource(elements::FullLibrarySource(), {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledChain* chain = program->FindChain("everything");
  ASSERT_NE(chain, nullptr);
  EXPECT_GE(chain->elements.size(), 8u);  // fusion may merge some
}

}  // namespace
}  // namespace adn::compiler
