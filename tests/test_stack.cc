// Baseline-stack tests: protobuf-style codec, HTTP/2 framing + HPACK,
// Envoy-like filters and sidecar processing.
#include <gtest/gtest.h>

#include "core/network.h"
#include "stack/envoy.h"
#include "stack/http2.h"
#include "stack/mesh_path.h"
#include "stack/proto_codec.h"

namespace adn::stack {
namespace {

using rpc::Message;
using rpc::Value;
using rpc::ValueType;

rpc::Schema TestSchema() {
  rpc::Schema s;
  (void)s.AddColumn({"username", ValueType::kText, false});
  (void)s.AddColumn({"object_id", ValueType::kInt, false});
  (void)s.AddColumn({"ratio", ValueType::kFloat, false});
  (void)s.AddColumn({"flag", ValueType::kBool, false});
  (void)s.AddColumn({"payload", ValueType::kBytes, false});
  return s;
}

// --- Proto codec ------------------------------------------------------------

TEST(ProtoCodec, RoundTripAllTypes) {
  ProtoSchema schema(TestSchema());
  Message m = Message::MakeRequest(1, "M",
                                   {{"username", Value("alice")},
                                    {"object_id", Value(987654321)},
                                    {"ratio", Value(0.5)},
                                    {"flag", Value(true)},
                                    {"payload", Value(Bytes{1, 2, 3})}});
  auto wire = ProtoEncode(m, schema);
  ASSERT_TRUE(wire.ok());
  auto decoded = ProtoDecode(wire.value(), schema);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->GetFieldOrNull("username").AsText(), "alice");
  EXPECT_EQ(decoded->GetFieldOrNull("object_id").AsInt(), 987654321);
  EXPECT_DOUBLE_EQ(decoded->GetFieldOrNull("ratio").AsFloat(), 0.5);
  EXPECT_TRUE(decoded->GetFieldOrNull("flag").AsBool());
  EXPECT_EQ(decoded->GetFieldOrNull("payload").AsBytes(), (Bytes{1, 2, 3}));
}

TEST(ProtoCodec, AbsentFieldsSkipped) {
  ProtoSchema schema(TestSchema());
  Message m = Message::MakeRequest(1, "M", {{"object_id", Value(1)}});
  auto wire = ProtoEncode(m, schema);
  ASSERT_TRUE(wire.ok());
  auto decoded = ProtoDecode(wire.value(), schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->HasField("username"));
}

TEST(ProtoCodec, UnknownFieldsSkippedOnDecode) {
  // Encode with a larger schema, decode with a smaller one: unknown field
  // numbers must be skipped, not rejected (protobuf compatibility rule).
  ProtoSchema big(TestSchema());
  rpc::Schema small_s;
  (void)small_s.AddColumn({"username", ValueType::kText, false});
  ProtoSchema small(small_s);
  Message m = Message::MakeRequest(1, "M",
                                   {{"username", Value("bob")},
                                    {"object_id", Value(5)},
                                    {"ratio", Value(1.5)},
                                    {"payload", Value(Bytes{1})}});
  auto wire = ProtoEncode(m, big);
  ASSERT_TRUE(wire.ok());
  auto decoded = ProtoDecode(wire.value(), small);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->GetFieldOrNull("username").AsText(), "bob");
  EXPECT_EQ(decoded->FieldCount(), 1u);
}

TEST(ProtoCodec, NegativeIntsRoundTrip) {
  rpc::Schema s;
  (void)s.AddColumn({"x", ValueType::kInt, false});
  ProtoSchema schema(s);
  Message m = Message::MakeRequest(1, "M", {{"x", Value(int64_t{-42})}});
  auto wire = ProtoEncode(m, schema);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->size(), 11u);  // proto int64: negative = 10-byte varint
  auto decoded = ProtoDecode(wire.value(), schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->GetFieldOrNull("x").AsInt(), -42);
}

TEST(ProtoCodec, TruncatedRejected) {
  ProtoSchema schema(TestSchema());
  Message m = Message::MakeRequest(1, "M", {{"username", Value("carol")}});
  auto wire = ProtoEncode(m, schema);
  ASSERT_TRUE(wire.ok());
  Bytes cut(wire->begin(), wire->end() - 2);
  EXPECT_FALSE(ProtoDecode(cut, schema).ok());
}

// --- HTTP/2 framing ------------------------------------------------------------

TEST(Http2, FrameRoundTrip) {
  Frame f;
  f.type = FrameType::kHeaders;
  f.flags = kFlagEndHeaders;
  f.stream_id = 77;
  f.payload = {1, 2, 3};
  Bytes wire;
  EncodeFrame(f, wire);
  EXPECT_EQ(wire.size(), 9u + 3u);
  auto frames = ParseFrames(wire);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 1u);
  EXPECT_EQ((*frames)[0].stream_id, 77u);
  EXPECT_EQ((*frames)[0].payload, (Bytes{1, 2, 3}));
}

TEST(Http2, TruncatedFrameRejected) {
  Bytes wire = {0, 0, 10, 0, 0, 0, 0, 0, 1, 0xAA};  // claims 10, has 1
  EXPECT_FALSE(ParseFrames(wire).ok());
}

TEST(Hpack, StaticTableIndexing) {
  HpackCodec enc, dec;
  HeaderList headers = {{":method", "POST"}, {":scheme", "http"}};
  Bytes block;
  enc.EncodeHeaderBlock(headers, block);
  EXPECT_LE(block.size(), 2u);  // both fully indexed, 1 byte each
  auto out = dec.DecodeHeaderBlock(block);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), headers);
}

TEST(Hpack, DynamicTableShrinksRepeats) {
  HpackCodec enc, dec;
  HeaderList headers = {{"x-user", "alice"}, {"x-object-id", "12345"}};
  Bytes first;
  enc.EncodeHeaderBlock(headers, first);
  auto out1 = dec.DecodeHeaderBlock(first);
  ASSERT_TRUE(out1.ok());
  EXPECT_EQ(out1.value(), headers);

  Bytes second;
  enc.EncodeHeaderBlock(headers, second);
  EXPECT_LT(second.size(), first.size());  // now indexed
  auto out2 = dec.DecodeHeaderBlock(second);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2.value(), headers);
}

TEST(Hpack, DesyncedDecoderFails) {
  HpackCodec enc, dec_fresh;
  HeaderList headers = {{"x-user", "alice"}};
  Bytes first;
  enc.EncodeHeaderBlock(headers, first);
  Bytes second;
  enc.EncodeHeaderBlock(headers, second);  // indexed against dynamic table
  // A decoder that missed the first block can't resolve the index.
  auto out = dec_fresh.DecodeHeaderBlock(second);
  EXPECT_FALSE(out.ok());
}

TEST(GrpcMessage, RoundTripThroughFrames) {
  HpackCodec enc, dec;
  GrpcHttp2Message msg;
  msg.headers = MakeGrpcRequestHeaders("svc-b", "/Echo.Call",
                                       {{"x-user", "dave"}});
  msg.grpc_payload = {9, 9, 9};
  msg.stream_id = 5;
  msg.end_stream = true;
  Bytes wire = EncodeGrpcMessage(msg, enc);
  auto out = ParseGrpcMessage(wire, dec);
  ASSERT_TRUE(out.ok()) << out.error().ToString();
  EXPECT_EQ(out->grpc_payload, (Bytes{9, 9, 9}));
  EXPECT_EQ(out->stream_id, 5u);
  EXPECT_TRUE(out->end_stream);
  bool found_user = false;
  for (const auto& [k, v] : out->headers) {
    if (k == "x-user") {
      EXPECT_EQ(v, "dave");
      found_user = true;
    }
  }
  EXPECT_TRUE(found_user);
}

TEST(GrpcMessage, LengthPrefixMismatchRejected) {
  HpackCodec enc, dec;
  GrpcHttp2Message msg;
  msg.headers = MakeGrpcResponseHeaders(0, {});
  msg.grpc_payload = {1, 2, 3, 4};
  Bytes wire = EncodeGrpcMessage(msg, enc);
  wire[wire.size() - 5] ^= 0xFF;  // corrupt the DATA length prefix region
  EXPECT_FALSE(ParseGrpcMessage(wire, dec).ok());
}

// --- Envoy filters ---------------------------------------------------------------

FilterContext MakeContext(HeaderList& headers, Bytes& body, Rng& rng,
                          std::vector<std::string>& log) {
  FilterContext ctx;
  ctx.headers = &headers;
  ctx.body = &body;
  ctx.is_request = true;
  ctx.rng = &rng;
  ctx.access_log = &log;
  return ctx;
}

TEST(AccessLog, FormatsOperators) {
  AccessLogFilter filter("user=%REQ(x-user)% bytes=%BYTES% d=%DIRECTION%");
  HeaderList headers = {{"x-user", "alice"}};
  Bytes body = {1, 2, 3};
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  EXPECT_EQ(filter.OnMessage(ctx).action, FilterAction::kContinue);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "user=alice bytes=3 d=request");
}

TEST(AccessLog, MissingHeaderDash) {
  AccessLogFilter filter("%REQ(x-missing)%");
  HeaderList headers;
  Bytes body;
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  (void)filter.OnMessage(ctx);
  EXPECT_EQ(log[0], "-");
}

TEST(Rbac, AllowsMatchingPrincipal) {
  RbacPolicy policy;
  policy.principals.push_back(
      {"x-user", HeaderMatcher::Kind::kExact, "alice"});
  RbacFilter filter({policy}, RbacFilter::DefaultAction::kDeny);
  HeaderList headers = {{"x-user", "alice"}};
  Bytes body;
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  EXPECT_EQ(filter.OnMessage(ctx).action, FilterAction::kContinue);
}

TEST(Rbac, DeniesNonMatching) {
  RbacPolicy policy;
  policy.principals.push_back(
      {"x-user", HeaderMatcher::Kind::kExact, "alice"});
  RbacFilter filter({policy}, RbacFilter::DefaultAction::kDeny);
  HeaderList headers = {{"x-user", "mallory"}};
  Bytes body;
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  auto r = filter.OnMessage(ctx);
  EXPECT_EQ(r.action, FilterAction::kAbort);
  EXPECT_EQ(r.http_status, 403);
}

TEST(Rbac, PrefixAndPresentMatchers) {
  HeaderList headers = {{"x-user", "svc-frontend"}, {"x-token", "t"}};
  HeaderMatcher prefix{"x-user", HeaderMatcher::Kind::kPrefix, "svc-"};
  HeaderMatcher present{"x-token", HeaderMatcher::Kind::kPresent, ""};
  HeaderMatcher absent{"x-nope", HeaderMatcher::Kind::kPresent, ""};
  EXPECT_TRUE(prefix.Matches(headers));
  EXPECT_TRUE(present.Matches(headers));
  EXPECT_FALSE(absent.Matches(headers));
}

TEST(Rbac, ResponsesPassThrough) {
  RbacFilter filter({}, RbacFilter::DefaultAction::kDeny);
  HeaderList headers;
  Bytes body;
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  ctx.is_request = false;
  EXPECT_EQ(filter.OnMessage(ctx).action, FilterAction::kContinue);
}

TEST(Fault, AbortsAtConfiguredRate) {
  FaultFilter filter(0.25, 503);
  HeaderList headers;
  Bytes body;
  Rng rng(77);
  std::vector<std::string> log;
  int aborts = 0;
  for (int i = 0; i < 10000; ++i) {
    auto ctx = MakeContext(headers, body, rng, log);
    if (filter.OnMessage(ctx).action == FilterAction::kAbort) ++aborts;
  }
  EXPECT_NEAR(aborts / 10000.0, 0.25, 0.03);
}

TEST(HashRouter, DeterministicPick) {
  HashRouterFilter filter("x-object-id", 4);
  HeaderList headers = {{"x-object-id", "777"}};
  Bytes body;
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  (void)filter.OnMessage(ctx);
  size_t first = filter.last_pick();
  (void)filter.OnMessage(ctx);
  EXPECT_EQ(filter.last_pick(), first);
  // Pick recorded as a header for the router.
  bool found = false;
  for (const auto& [k, v] : headers) {
    if (k == "x-adn-upstream") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Compressor, RoundTripThroughBothFilters) {
  CompressorFilter compress(true);
  CompressorFilter decompress(false);
  HeaderList headers;
  Bytes body(5000, 'q');
  Bytes original = body;
  Rng rng(1);
  std::vector<std::string> log;
  auto ctx = MakeContext(headers, body, rng, log);
  EXPECT_EQ(compress.OnMessage(ctx).action, FilterAction::kContinue);
  EXPECT_LT(body.size(), original.size());
  EXPECT_EQ(decompress.OnMessage(ctx).action, FilterAction::kContinue);
  EXPECT_EQ(body, original);
}

// --- Sidecar ---------------------------------------------------------------------

TEST(Sidecar, ParsesFiltersAndReencodes) {
  EnvoySidecar sidecar("sc", 1);
  sidecar.AddFilter(std::make_unique<AccessLogFilter>("%REQ(:path)%"));

  HpackCodec app_enc, upstream_dec;
  HpackCodec in_dec, out_enc;
  GrpcHttp2Message msg;
  msg.headers = MakeGrpcRequestHeaders("b", "/Echo.Call", {});
  msg.grpc_payload = {5, 5};
  msg.stream_id = 3;
  Bytes wire = EncodeGrpcMessage(msg, app_enc);

  auto out = sidecar.ProcessMessage(wire, true, in_dec, out_enc);
  // in_dec must mirror app_enc's stream; re-sync by decoding what app sent.
  // (ProcessMessage already consumed it through in_dec.)
  ASSERT_TRUE(out.ok()) << out.error().ToString();
  EXPECT_FALSE(out->aborted);
  auto reparsed = ParseGrpcMessage(out->wire, upstream_dec);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->grpc_payload, (Bytes{5, 5}));
  EXPECT_EQ(sidecar.access_log().size(), 1u);
  EXPECT_EQ(sidecar.access_log()[0], "/Echo.Call");
  EXPECT_EQ(sidecar.messages_processed(), 1u);
}

TEST(Sidecar, AbortShortCircuits) {
  EnvoySidecar sidecar("sc", 1);
  RbacPolicy nobody;
  nobody.principals.push_back(
      {"x-user", HeaderMatcher::Kind::kExact, "nobody"});
  sidecar.AddFilter(std::make_unique<RbacFilter>(
      std::vector<RbacPolicy>{nobody}, RbacFilter::DefaultAction::kDeny));

  HpackCodec app_enc, in_dec, out_enc;
  GrpcHttp2Message msg;
  msg.headers = MakeGrpcRequestHeaders("b", "/Echo.Call",
                                       {{"x-user", "alice"}});
  msg.grpc_payload = {};
  Bytes wire = EncodeGrpcMessage(msg, app_enc);
  auto out = sidecar.ProcessMessage(wire, true, in_dec, out_enc);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->aborted);
  EXPECT_EQ(out->http_status, 403);
  EXPECT_EQ(sidecar.messages_aborted(), 1u);
}

TEST(Sidecar, CostGrowsWithFilters) {
  const auto& model = sim::CostModel::Default();
  EnvoySidecar bare("a", 1);
  EnvoySidecar loaded("b", 1);
  loaded.AddFilter(std::make_unique<AccessLogFilter>("x"));
  loaded.AddFilter(std::make_unique<FaultFilter>(0.0, 503));
  EXPECT_GT(loaded.MessageCostNs(model, 500, true),
            bare.MessageCostNs(model, 500, true));
  // Responses pay less than requests for request-only filters.
  EXPECT_GT(loaded.MessageCostNs(model, 500, true),
            loaded.MessageCostNs(model, 500, false));
}

// --- Mesh experiment end to end ------------------------------------------------

TEST(MeshExperiment, CompletesAndObeysWindow) {
  MeshConfig config;
  config.concurrency = 64;
  config.measured_requests = 2'000;
  config.warmup_requests = 200;
  config.request_schema = TestSchema();
  config.make_request = core::MakeDefaultRequestFactory();
  config.filters.push_back(
      [] { return std::make_unique<AccessLogFilter>("%BYTES%"); });
  MeshResult result = RunMeshExperiment(config);
  EXPECT_EQ(result.stats.completed + result.stats.dropped, 2'200u);
  EXPECT_GT(result.stats.throughput_krps, 1.0);
  // With two proxies + full stack the RTT must exceed several hundred us.
  EXPECT_GT(result.stats.mean_latency_us, 300.0);
  EXPECT_FALSE(result.stage_cpu_ns.empty());
  EXPECT_GT(result.wire_bytes_per_request, 100.0);
}

TEST(MeshExperiment, FaultAbortsAreCounted) {
  MeshConfig config;
  config.concurrency = 16;
  config.measured_requests = 4'000;
  config.warmup_requests = 200;
  config.request_schema = TestSchema();
  config.make_request = core::MakeDefaultRequestFactory();
  config.filters.push_back(
      [] { return std::make_unique<FaultFilter>(0.10, 503); });
  MeshResult result = RunMeshExperiment(config);
  double drop_rate =
      static_cast<double>(result.stats.dropped) /
      static_cast<double>(result.stats.completed + result.stats.dropped);
  EXPECT_NEAR(drop_rate, 0.10, 0.03);
}

}  // namespace
}  // namespace adn::stack
