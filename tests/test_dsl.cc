// DSL front-end tests: lexer, parser, error diagnostics, and the paper's
// Figure 4 element verbatim.
#include <gtest/gtest.h>

#include "dsl/lexer.h"
#include "dsl/parser.h"
#include "elements/library.h"

namespace adn::dsl {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(Lexer, KeywordsCaseInsensitiveIdentifiersNot) {
  auto tokens = Tokenize("select Select FROM my_Table");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, "FROM");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[3].text, "my_Table");
}

TEST(Lexer, NumbersIntAndFloat) {
  auto tokens = Tokenize("42 0.05 1e3 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 0.05);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 1000.0);
}

TEST(Lexer, StringsWithEscapedQuotes) {
  auto tokens = Tokenize("'it''s fine'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "it's fine");
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = Tokenize("a -- line comment\n/* block\ncomment */ b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, EOF
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].location.line, 3);
}

TEST(Lexer, UnterminatedConstructsError) {
  EXPECT_FALSE(Tokenize("'no closing quote").ok());
  EXPECT_FALSE(Tokenize("/* never closed").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a | b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(Lexer, OperatorsAndArrow) {
  auto tokens = Tokenize("!= <> <= >= || -> - >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kConcat);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kMinus);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kGt);
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].location.line, 1);
  EXPECT_EQ((*tokens)[1].location.line, 2);
  EXPECT_EQ((*tokens)[1].location.column, 3);
}

// --- Expression parsing ---------------------------------------------------------

TEST(Parser, PrecedenceMulOverAdd) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(1 + (2 * 3))");
}

TEST(Parser, PrecedenceComparisonOverAnd) {
  auto e = ParseExpression("a = 1 AND b > 2 OR NOT c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(),
            "(((a = 1) AND (b > 2)) OR NOT c)");
}

TEST(Parser, ParenthesesOverride) {
  auto e = ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((1 + 2) * 3)");
}

TEST(Parser, UnaryMinusAndCalls) {
  auto e = ParseExpression("max(-x, abs(y) % 16)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "max(-x, (abs(y) % 16))");
}

TEST(Parser, QualifiedColumns) {
  auto e = ParseExpression("input.user = ac_tab.user");
  ASSERT_TRUE(e.ok());
  const auto* bin = (*e)->As<BinaryExpr>();
  ASSERT_NE(bin, nullptr);
  EXPECT_EQ(bin->lhs->As<ColumnRefExpr>()->table, "input");
  EXPECT_EQ(bin->rhs->As<ColumnRefExpr>()->table, "ac_tab");
}

TEST(Parser, LiteralKeywords) {
  auto e = ParseExpression("TRUE AND NOT FALSE");
  ASSERT_TRUE(e.ok());
  auto n = ParseExpression("NULL");
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE((*n)->As<LiteralExpr>()->value.is_null());
}

TEST(Parser, BadExpressions) {
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
  EXPECT_FALSE(ParseExpression("f(1,").ok());
  EXPECT_FALSE(ParseExpression("SELECT").ok());
  EXPECT_FALSE(ParseExpression("").ok());
}

// --- Declarations -----------------------------------------------------------------

TEST(Parser, TableDecl) {
  auto p = ParseProgram(
      "STATE TABLE t (a INT PRIMARY KEY, b TEXT, c FLOAT, d BYTES, e BOOL);");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  ASSERT_EQ(p->tables.size(), 1u);
  const auto& schema = p->tables[0].schema;
  EXPECT_EQ(schema.size(), 5u);
  EXPECT_TRUE(schema.columns()[0].primary_key);
  EXPECT_EQ(schema.columns()[2].type, rpc::ValueType::kFloat);
}

TEST(Parser, Figure4AclVerbatim) {
  // The paper's Figure 4 processing logic, accepted as written (empty select
  // list means pass-through).
  auto p = ParseProgram(R"(
    STATE TABLE ac_tab (name TEXT PRIMARY KEY, permission TEXT);
    ELEMENT AccessControl ON REQUEST {
      INPUT (name TEXT);
      SELECT FROM input JOIN ac_tab ON input.name = ac_tab.name
        WHERE ac_tab.permission = 'W';
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  const auto& element = p->elements[0];
  ASSERT_EQ(element.body.size(), 1u);
  const auto& select = std::get<SelectStmt>(element.body[0]);
  ASSERT_EQ(select.items.size(), 1u);
  EXPECT_TRUE(select.items[0].is_star);
  ASSERT_TRUE(select.join.has_value());
  EXPECT_EQ(select.join->table, "ac_tab");
  ASSERT_NE(select.where, nullptr);
}

TEST(Parser, ElementDefaultsAndDropClause) {
  auto p = ParseProgram(R"(
    ELEMENT E {
      INPUT (x INT);
      ON DROP SILENT;
      SELECT * FROM input WHERE x > 0;
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  EXPECT_EQ(p->elements[0].direction, Direction::kRequest);
  EXPECT_EQ(p->elements[0].on_drop, DropBehavior::kSilent);
}

TEST(Parser, AbortMessageCaptured) {
  auto p = ParseProgram(R"(
    ELEMENT E ON BOTH {
      INPUT (x INT);
      ON DROP ABORT 'no entry';
      SELECT * FROM input WHERE x > 0;
    }
  )");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->elements[0].direction, Direction::kBoth);
  EXPECT_EQ(p->elements[0].abort_message, "no entry");
}

TEST(Parser, InsertUpdateDelete) {
  auto p = ParseProgram(R"(
    STATE TABLE t (a INT PRIMARY KEY, b INT);
    ELEMENT E {
      INPUT (x INT);
      INSERT INTO t VALUES (x, 0);
      INSERT INTO t (a) VALUES (x + 1);
      UPDATE t SET b = b + 1 WHERE a = x;
      DELETE FROM t WHERE b > 10;
      SELECT * FROM input;
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  EXPECT_EQ(p->elements[0].body.size(), 5u);
}

TEST(Parser, InsertFromSelect) {
  auto p = ParseProgram(R"(
    STATE TABLE t (a INT, b INT);
    ELEMENT E {
      INPUT (x INT);
      INSERT INTO t SELECT x AS a, x * 2 AS b FROM input;
      SELECT * FROM input;
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  const auto& ins = std::get<InsertStmt>(p->elements[0].body[0]);
  ASSERT_NE(ins.from_select, nullptr);
  EXPECT_EQ(ins.from_select->items.size(), 2u);
}

TEST(Parser, FilterDecl) {
  auto p = ParseProgram(
      "FILTER F ON REQUEST USING rate_limit(rps => 100, burst => 5);");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  ASSERT_EQ(p->filters.size(), 1u);
  EXPECT_EQ(p->filters[0].op, "rate_limit");
  ASSERT_EQ(p->filters[0].args.size(), 2u);
  EXPECT_EQ(p->filters[0].args[0].first, "rps");
  EXPECT_EQ(p->filters[0].args[0].second.AsInt(), 100);
}

TEST(Parser, FilterArgLiterals) {
  auto p = ParseProgram(
      "FILTER F USING circuit_breaker(error_threshold => 0.5, "
      "window => -1);");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  EXPECT_DOUBLE_EQ(p->filters[0].args[0].second.AsFloat(), 0.5);
  EXPECT_EQ(p->filters[0].args[1].second.AsInt(), -1);
}

TEST(Parser, ChainWithConstraints) {
  auto p = ParseProgram(R"(
    ELEMENT A { INPUT (x INT); SELECT * FROM input; }
    ELEMENT B { INPUT (x INT); SELECT * FROM input; }
    CHAIN c FOR CALLS svc1 -> svc2 {
      A AT SENDER,
      B AT TRUSTED
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().ToString();
  ASSERT_EQ(p->chains.size(), 1u);
  EXPECT_EQ(p->chains[0].caller_service, "svc1");
  EXPECT_EQ(p->chains[0].callee_service, "svc2");
  EXPECT_EQ(p->chains[0].elements[0].location, LocationConstraint::kSender);
  EXPECT_EQ(p->chains[0].elements[1].location, LocationConstraint::kTrusted);
}

// --- Error diagnostics (message includes location) --------------------------------

struct BadProgramCase {
  const char* name;
  const char* source;
  const char* expect_substring;
};

class ParserErrors : public ::testing::TestWithParam<BadProgramCase> {};

TEST_P(ParserErrors, RejectsWithUsefulMessage) {
  auto p = ParseProgram(GetParam().source);
  ASSERT_FALSE(p.ok()) << "should have rejected: " << GetParam().name;
  EXPECT_NE(p.error().message().find(GetParam().expect_substring),
            std::string::npos)
      << "got: " << p.error().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadProgramCase{"empty element", "ELEMENT E { }", "empty body"},
        BadProgramCase{"missing semicolon",
                       "ELEMENT E { SELECT * FROM input }", "';'"},
        BadProgramCase{"dup element",
                       "ELEMENT E { INPUT (x INT); SELECT * FROM input; } "
                       "ELEMENT E { INPUT (x INT); SELECT * FROM input; }",
                       "duplicate element"},
        BadProgramCase{"dup table",
                       "STATE TABLE t (a INT); STATE TABLE t (a INT);",
                       "duplicate table"},
        BadProgramCase{"bad type", "STATE TABLE t (a TENSOR);",
                       "unknown type"},
        BadProgramCase{"computed needs alias",
                       "ELEMENT E { INPUT (x INT); SELECT x + 1 FROM input; }",
                       "AS"},
        BadProgramCase{"join needs equality",
                       "ELEMENT E { INPUT (x INT); SELECT * FROM input JOIN t "
                       "ON x > 1; }",
                       "equality"},
        BadProgramCase{"chain arrow", "CHAIN c FOR CALLS a b { E }", "'->'"},
        BadProgramCase{"stray token", "42", "expected STATE"},
        BadProgramCase{"bad location constraint",
                       "ELEMENT E { INPUT (x INT); SELECT * FROM input; } "
                       "CHAIN c FOR CALLS a -> b { E AT NOWHERE }",
                       "SENDER"}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

// --- Library sources all parse -------------------------------------------------

TEST(Library, AllProgramsParse) {
  for (const std::string source :
       {elements::Fig5ProgramSource(), elements::Fig2ProgramSource(),
        elements::FullLibrarySource()}) {
    auto p = ParseProgram(source);
    EXPECT_TRUE(p.ok()) << p.status().ToString() << "\nsource:\n" << source;
  }
}

TEST(Library, DslSourcesAreTensOfLines) {
  // The paper's §6 claim baseline: elements are tens of lines of SQL.
  for (std::string_view source :
       {elements::LoggingSql(), elements::AclSql(), elements::FaultSql(),
        elements::HashLbSql(), elements::CompressSql()}) {
    int lines = 0;
    for (char c : source) {
      if (c == '\n') ++lines;
    }
    EXPECT_LT(lines, 15) << source;
  }
}

}  // namespace
}  // namespace adn::dsl
