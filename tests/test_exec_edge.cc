// Edge-case sweeps for the expression evaluator and element executor:
// SQL NULL semantics, arithmetic corner cases, every builtin through the
// DSL, and generated-code golden checks.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "compiler/backend.h"
#include "compiler/lower.h"
#include "dsl/parser.h"
#include "ir/exec.h"

namespace adn::ir {
namespace {

using rpc::Message;
using rpc::Value;
using rpc::ValueType;

// Evaluate `expr` in an element with input (i INT, f FLOAT, t TEXT, b BYTES,
// fl BOOL), write it to field `out`, and return that field after Process.
Result<Value> Eval(const std::string& expr, Message message) {
  std::string source =
      "ELEMENT E { INPUT (i INT, f FLOAT, t TEXT, b BYTES, fl BOOL); "
      "SELECT *, " + expr + " AS result FROM input; }";
  auto parsed = dsl::ParseProgram(source);
  if (!parsed.ok()) return parsed.error();
  auto program = compiler::LowerProgram(*parsed);
  if (!program.ok()) return program.error();
  ElementInstance instance(program->elements[0], 1);
  ProcessResult r = instance.Process(message, 1'234'567);
  if (r.outcome != ProcessOutcome::kPass) {
    return Error(ErrorCode::kInternal, "dropped: " + r.abort_message);
  }
  return message.GetFieldOrNull("result");
}

Message Base() {
  return Message::MakeRequest(42, "Edge.Case",
                              {{"i", Value(10)},
                               {"f", Value(2.5)},
                               {"t", Value("abc")},
                               {"b", Value(Bytes{1, 2})},
                               {"fl", Value(true)}});
}

TEST(ExprEdge, IntegerArithmetic) {
  EXPECT_EQ(Eval("i + 5", Base())->AsInt(), 15);
  EXPECT_EQ(Eval("i - 15", Base())->AsInt(), -5);
  EXPECT_EQ(Eval("i * i", Base())->AsInt(), 100);
  EXPECT_EQ(Eval("i / 3", Base())->AsInt(), 3);
  EXPECT_EQ(Eval("-i", Base())->AsInt(), -10);
}

TEST(ExprEdge, ModuloIsNonNegative) {
  // hash(x) % n must be a valid shard id even for negative operands.
  EXPECT_EQ(Eval("(0 - 7) % 3", Base())->AsInt(), 2);
  EXPECT_EQ(Eval("7 % 3", Base())->AsInt(), 1);
}

TEST(ExprEdge, MixedArithmeticPromotesToFloat) {
  auto v = Eval("i + f", Base());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), ValueType::kFloat);
  EXPECT_DOUBLE_EQ(v->AsFloat(), 12.5);
}

TEST(ExprEdge, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(Eval("i / 0", Base())->is_null());
  EXPECT_TRUE(Eval("i % 0", Base())->is_null());
  EXPECT_TRUE(Eval("f / 0.0", Base())->is_null());
}

TEST(ExprEdge, NullPropagatesThroughArithmetic) {
  Message m = Base();
  m.RemoveField("i");  // i reads as NULL
  EXPECT_TRUE(Eval("i + 1", m)->is_null());
}

TEST(ExprEdge, TextConcat) {
  EXPECT_EQ(Eval("t || 'def'", Base())->AsText(), "abcdef");
  EXPECT_EQ(Eval("'' || t", Base())->AsText(), "abc");
}

TEST(ExprEdge, BytesConcat) {
  auto v = Eval("b || b", Base());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsBytes(), (Bytes{1, 2, 1, 2}));
}

TEST(ExprEdge, BooleanLogic) {
  EXPECT_TRUE(Eval("fl AND TRUE", Base())->AsBool());
  EXPECT_FALSE(Eval("fl AND FALSE", Base())->AsBool());
  EXPECT_TRUE(Eval("FALSE OR fl", Base())->AsBool());
  EXPECT_FALSE(Eval("NOT fl", Base())->AsBool());
}

TEST(ExprEdge, NullIsFalseAtPredicateBoundary) {
  Message m = Base();
  m.RemoveField("fl");
  EXPECT_FALSE(Eval("fl AND TRUE", m)->AsBool());
  EXPECT_FALSE(Eval("fl OR FALSE", m)->AsBool());
}

TEST(ExprEdge, Comparisons) {
  EXPECT_TRUE(Eval("i >= 10", Base())->AsBool());
  EXPECT_FALSE(Eval("i > 10", Base())->AsBool());
  EXPECT_TRUE(Eval("f != 2.0", Base())->AsBool());
  EXPECT_TRUE(Eval("t = 'abc'", Base())->AsBool());
  EXPECT_TRUE(Eval("i = 10.0", Base())->AsBool());  // cross-type numeric
}

TEST(ExprEdge, ComparisonWithNullIsNull) {
  Message m = Base();
  m.RemoveField("i");
  EXPECT_TRUE(Eval("i = 10", m)->is_null());
  EXPECT_TRUE(Eval("i < 10", m)->is_null());
}

TEST(ExprEdge, Builtins) {
  EXPECT_EQ(Eval("len(t)", Base())->AsInt(), 3);
  EXPECT_EQ(Eval("len(b)", Base())->AsInt(), 2);
  EXPECT_EQ(Eval("min(i, 3)", Base())->AsInt(), 3);
  EXPECT_EQ(Eval("max(i, 3)", Base())->AsInt(), 10);
  EXPECT_DOUBLE_EQ(Eval("max(f, 1.0)", Base())->AsFloat(), 2.5);
  EXPECT_EQ(Eval("abs(0 - i)", Base())->AsInt(), 10);
  EXPECT_EQ(Eval("to_text(i)", Base())->AsText(), "10");
  EXPECT_EQ(Eval("to_int('123')", Base())->AsInt(), 123);
  EXPECT_EQ(Eval("to_int(fl)", Base())->AsInt(), 1);
}

TEST(ExprEdge, MetadataBuiltins) {
  EXPECT_EQ(Eval("rpc_id()", Base())->AsInt(), 42);
  EXPECT_EQ(Eval("method()", Base())->AsText(), "Edge.Case");
  EXPECT_EQ(Eval("now()", Base())->AsInt(), 1'234'567);
}

TEST(ExprEdge, HashIsStableAndSpreads) {
  auto h1 = Eval("hash(t)", Base());
  auto h2 = Eval("hash(t)", Base());
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(h1->AsInt(), h2->AsInt());
  EXPECT_GE(h1->AsInt(), 0);  // top bit cleared: safe for % routing
  auto h3 = Eval("hash(i)", Base());
  EXPECT_NE(h1->AsInt(), h3->AsInt());
}

TEST(ExprEdge, Crc32Builtin) {
  auto v = Eval("crc32(b)", Base());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(),
            static_cast<int64_t>(Crc32c(Bytes{1, 2})));
}

TEST(ExprEdge, EncryptDecryptThroughDsl) {
  auto enc = Eval("encrypt(b, 'k')", Base());
  ASSERT_TRUE(enc.ok());
  Message m = Base();
  m.SetField("b", *enc);
  auto dec = Eval("decrypt(b, 'k')", m);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->AsBytes(), (Bytes{1, 2}));
}

TEST(ExprEdge, ToIntOnGarbageTextAborts) {
  Message m = Base();
  m.SetField("t", Value("not-a-number"));
  auto v = Eval("to_int(t)", m);
  ASSERT_FALSE(v.ok());  // runtime error surfaces as abort, not crash
  EXPECT_NE(v.error().message().find("not-a-number"), std::string::npos);
}

// --- Generated-code golden checks (stability of the emitters) -----------------

TEST(Emission, EbpfGoldenForPureFilter) {
  auto parsed = dsl::ParseProgram(
      "ELEMENT Gate ON REQUEST { INPUT (x INT); "
      "SELECT * FROM input WHERE x % 2 = 0; }");
  ASSERT_TRUE(parsed.ok());
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  std::string code = compiler::EmitEbpfC(*program->elements[0]);
  EXPECT_NE(code.find("SEC(\"adn/Gate\")"), std::string::npos);
  EXPECT_NE(code.find("if (!((msg->x % 2) == 0)) return ADN_DROP;"),
            std::string::npos);
  EXPECT_NE(code.find("return ADN_PASS;"), std::string::npos);
}

TEST(Emission, P4GoldenForFieldRewrite) {
  auto parsed = dsl::ParseProgram(
      "ELEMENT Stamp ON REQUEST { INPUT (x INT); "
      "SELECT *, hash(x) % 8 AS shard FROM input; }");
  ASSERT_TRUE(parsed.ok());
  auto program = compiler::LowerProgram(*parsed);
  ASSERT_TRUE(program.ok());
  rpc::HeaderSpec spec;
  spec.fields = {{"x", ValueType::kInt, false},
                 {"shard", ValueType::kInt, false}};
  std::string code = compiler::EmitP4(*program->elements[0], spec);
  EXPECT_NE(code.find("control Stamp"), std::string::npos);
  EXPECT_NE(code.find("hdr.shard = (adn_fnv1a64(msg->x) % 8);"),
            std::string::npos);
}

}  // namespace
}  // namespace adn::ir
