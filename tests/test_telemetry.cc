// Telemetry hub tests: the Figure 3 feedback path from processors to the
// controller, plus fuzz/property sweeps for the wire formats (robustness of
// everything a hostile network could feed us).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "controller/telemetry.h"
#include "rpc/table.h"
#include "rpc/wire.h"
#include "stack/http2.h"
#include "stack/proto_codec.h"

namespace adn {
namespace {

using controller::ProcessorReport;
using controller::ScalingAdvice;
using controller::TelemetryHub;

ProcessorReport Report(const std::string& processor, double utilization,
                       uint64_t processed = 100, uint64_t dropped = 0) {
  ProcessorReport r;
  r.processor = processor;
  r.window_start = 0;
  r.window_end = 1'000'000;
  r.processed = processed;
  r.dropped = dropped;
  r.utilization = utilization;
  return r;
}

TEST(Telemetry, RejectsMalformedReports) {
  TelemetryHub hub;
  ProcessorReport no_name = Report("", 0.5);
  EXPECT_FALSE(hub.Ingest(no_name).ok());
  ProcessorReport bad_window = Report("e", 0.5);
  bad_window.window_start = 10;
  bad_window.window_end = 5;
  EXPECT_FALSE(hub.Ingest(bad_window).ok());
  ProcessorReport bad_util = Report("e", 1.5);
  EXPECT_FALSE(hub.Ingest(bad_util).ok());
  EXPECT_EQ(hub.reports_ingested(), 0u);
}

TEST(Telemetry, SmoothsOverWindow) {
  TelemetryHub hub(controller::TelemetryOptions{.window_reports = 4});
  for (double u : {0.2, 0.4, 0.6, 0.8}) {
    ASSERT_TRUE(hub.Ingest(Report("engine", u)).ok());
  }
  EXPECT_NEAR(hub.SmoothedUtilization("engine"), 0.5, 1e-9);
  // Window slides: a fifth report evicts the first.
  ASSERT_TRUE(hub.Ingest(Report("engine", 1.0)).ok());
  EXPECT_NEAR(hub.SmoothedUtilization("engine"), 0.7, 1e-9);
  EXPECT_EQ(hub.SmoothedUtilization("ghost"), 0.0);
}

TEST(Telemetry, AdviceThresholds) {
  TelemetryHub hub;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(hub.Ingest(Report("hot", 0.95)).ok());
    ASSERT_TRUE(hub.Ingest(Report("cold", 0.05)).ok());
    ASSERT_TRUE(hub.Ingest(Report("warm", 0.5)).ok());
  }
  EXPECT_EQ(hub.Advise("hot"), ScalingAdvice::kScaleOut);
  EXPECT_EQ(hub.Advise("cold"), ScalingAdvice::kScaleIn);
  EXPECT_EQ(hub.Advise("warm"), ScalingAdvice::kSteady);
}

TEST(Telemetry, DropAlerts) {
  TelemetryHub hub;
  ASSERT_TRUE(hub.Ingest(Report("lossy", 0.5, 80, 20)).ok());
  ASSERT_TRUE(hub.Ingest(Report("clean", 0.5, 100, 1)).ok());
  auto alerts = hub.DropAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0], "lossy");
}

// Regression: a processor label that first appears mid-run (scale-out, a
// late-installed element) arrives with a cumulative counter history. The
// first observation must seed the baseline — crediting the lifetime total
// to one window would fabricate a drop-rate spike and a spurious alert.
TEST(Telemetry, SnapshotLabelAppearingMidRunSeedsInsteadOfSpiking) {
  obs::MetricsRegistry reg;
  reg.GetCounter("adn_chain_rpcs_total", "processor=\"old\"").Inc(100);
  reg.GetCounter("adn_chain_drops_total", "processor=\"old\"").Inc(0);

  TelemetryHub hub;
  ASSERT_TRUE(hub.IngestSnapshot(reg.Snapshot(), 0, 100).ok());

  // "fresh" appears between windows carrying 1000 lifetime rpcs and 900
  // lifetime drops from before the hub watched it.
  reg.GetCounter("adn_chain_rpcs_total", "processor=\"old\"").Inc(100);
  reg.GetCounter("adn_chain_rpcs_total", "processor=\"fresh\"").Inc(1000);
  reg.GetCounter("adn_chain_drops_total", "processor=\"fresh\"").Inc(900);
  ASSERT_TRUE(hub.IngestSnapshot(reg.Snapshot(), 100, 200).ok());
  // Seeded, not spiked: no drop alert for the newcomer.
  EXPECT_TRUE(hub.DropAlerts().empty());

  // The newcomer's *next* window reports real deltas.
  reg.GetCounter("adn_chain_rpcs_total", "processor=\"fresh\"").Inc(50);
  reg.GetCounter("adn_chain_drops_total", "processor=\"fresh\"").Inc(40);
  ASSERT_TRUE(hub.IngestSnapshot(reg.Snapshot(), 200, 300).ok());
  auto alerts = hub.DropAlerts();
  ASSERT_EQ(alerts.size(), 1u);  // 40/50 this window: a real alert
  EXPECT_EQ(alerts[0], "fresh");
}

// --- SLO monitor -------------------------------------------------------------

obs::SnapshotHistogram LatencyWindow(uint64_t fast, uint64_t slow) {
  // Two-bucket layout: "fast" observations land at <= 100us, "slow" at
  // <= 10ms; the objective in these tests sits between the two.
  obs::SnapshotHistogram h;
  h.upper_bounds = {100'000, 10'000'000};
  h.bucket_counts = {fast, slow, 0};
  h.count = fast + slow;
  return h;
}

TEST(Slo, BurnRateFromLatencyWindows) {
  controller::SloOptions opts;
  opts.latency_objective_ns = 1'000'000;  // 1 ms, between the two buckets
  opts.latency_quantile = 0.99;           // 1% budget
  controller::SloMonitor slo(opts);

  slo.ObserveWindow(LatencyWindow(1000, 0), 1000, 0);
  EXPECT_NEAR(slo.last_burn(), 0.0, 0.1);
  EXPECT_FALSE(slo.latency_alert());

  // 5% of the window beyond the objective = 5x the 1% budget.
  slo.ObserveWindow(LatencyWindow(950, 50), 1000, 0);
  EXPECT_NEAR(slo.last_burn(), 5.0, 0.7);
}

TEST(Slo, LatencyAlertHasHysteresis) {
  controller::SloOptions opts;
  opts.latency_objective_ns = 1'000'000;
  opts.alert_after = 2;
  opts.clear_after = 2;
  controller::SloMonitor slo(opts);

  // One violating window does not alert...
  slo.ObserveWindow(LatencyWindow(500, 500), 1000, 0);
  EXPECT_FALSE(slo.latency_alert());
  // ...two consecutive ones do.
  slo.ObserveWindow(LatencyWindow(500, 500), 1000, 0);
  EXPECT_TRUE(slo.latency_alert());
  // One healthy window does not clear...
  slo.ObserveWindow(LatencyWindow(1000, 0), 1000, 0);
  EXPECT_TRUE(slo.latency_alert());
  // ...two do.
  slo.ObserveWindow(LatencyWindow(1000, 0), 1000, 0);
  EXPECT_FALSE(slo.latency_alert());
}

TEST(Slo, DropObjectiveAndEmptyWindows) {
  controller::SloOptions opts;
  opts.drop_objective = 0.01;
  opts.alert_after = 2;
  controller::SloMonitor slo(opts);

  // 10% loss two windows running -> drop alert; empty latency windows stay
  // latency-healthy (the loss objective owns outages).
  slo.ObserveWindow(obs::SnapshotHistogram{}, 1000, 100);
  slo.ObserveWindow(obs::SnapshotHistogram{}, 1000, 100);
  EXPECT_TRUE(slo.drop_alert());
  EXPECT_FALSE(slo.latency_alert());
  EXPECT_NEAR(slo.last_drop_fraction(), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(slo.last_quantile_ns(), 0.0);
  // No attempts at all: vacuously healthy.
  slo.ObserveWindow(obs::SnapshotHistogram{}, 0, 0);
  slo.ObserveWindow(obs::SnapshotHistogram{}, 0, 0);
  EXPECT_FALSE(slo.drop_alert());
}

TEST(Telemetry, CounterAggregation) {
  TelemetryHub hub;
  ProcessorReport r1 = Report("engine", 0.4);
  r1.counters = {{"Store.Get", 40}, {"Store.Put", 2}};
  ProcessorReport r2 = Report("engine", 0.4);
  r2.counters = {{"Store.Get", 60}};
  ASSERT_TRUE(hub.Ingest(r1).ok());
  ASSERT_TRUE(hub.Ingest(r2).ok());
  EXPECT_EQ(hub.CounterTotal("engine", "Store.Get"), 100);
  EXPECT_EQ(hub.CounterTotal("engine", "Store.Put"), 2);
  EXPECT_EQ(hub.CounterTotal("engine", "nope"), 0);
  EXPECT_EQ(hub.CounterTotal("ghost", "Store.Get"), 0);
}

// --- Wire-format fuzz properties -------------------------------------------------
// A network-facing decoder must reject garbage cleanly: no crash, no hang,
// no silent success on random bytes that happens to corrupt state.

TEST(WireFuzz, AdnCodecNeverCrashesOnRandomBytes) {
  rpc::HeaderSpec spec;
  spec.fields = {{"username", rpc::ValueType::kText, false},
                 {"object_id", rpc::ValueType::kInt, false},
                 {"payload", rpc::ValueType::kBytes, false}};
  rpc::MethodRegistry methods;
  methods.Intern("M");
  rpc::AdnWireCodec codec(spec, &methods);
  Rng rng(1);
  for (int trial = 0; trial < 2'000; ++trial) {
    Bytes junk(rng.NextBelow(96));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    auto decoded = codec.Decode(junk);
    (void)decoded;  // ok() or error — either is fine; crashing is not
  }
}

TEST(WireFuzz, AdnCodecBitFlipsRoundTripOrFail) {
  rpc::HeaderSpec spec;
  spec.fields = {{"username", rpc::ValueType::kText, false},
                 {"payload", rpc::ValueType::kBytes, false}};
  rpc::MethodRegistry methods;
  methods.Intern("M");
  rpc::AdnWireCodec codec(spec, &methods);
  rpc::Message m = rpc::Message::MakeRequest(
      9, "M",
      {{"username", rpc::Value("alice")},
       {"payload", rpc::Value(Bytes(32, 0x7F))}});
  Bytes wire;
  ASSERT_TRUE(codec.Encode(m, wire).ok());
  Rng rng(2);
  for (int trial = 0; trial < 2'000; ++trial) {
    Bytes flipped = wire;
    flipped[rng.NextBelow(flipped.size())] ^=
        static_cast<uint8_t>(1u << rng.NextBelow(8));
    auto decoded = codec.Decode(flipped);
    (void)decoded;  // never crashes; may fail or decode something else
  }
}

TEST(WireFuzz, Http2FramerNeverCrashesOnRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 2'000; ++trial) {
    Bytes junk(rng.NextBelow(128));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    stack::HpackCodec hpack;
    auto parsed = stack::ParseGrpcMessage(junk, hpack);
    (void)parsed;
  }
}

TEST(WireFuzz, ProtoDecoderNeverCrashesOnRandomBytes) {
  rpc::Schema schema;
  (void)schema.AddColumn({"a", rpc::ValueType::kText, false});
  (void)schema.AddColumn({"b", rpc::ValueType::kInt, false});
  (void)schema.AddColumn({"c", rpc::ValueType::kFloat, false});
  stack::ProtoSchema proto(schema);
  Rng rng(4);
  for (int trial = 0; trial < 2'000; ++trial) {
    Bytes junk(rng.NextBelow(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    auto decoded = stack::ProtoDecode(junk, proto);
    (void)decoded;
  }
}

TEST(WireFuzz, TableRestoreNeverCrashesOnRandomBytes) {
  Rng rng(5);
  for (int trial = 0; trial < 2'000; ++trial) {
    Bytes junk(rng.NextBelow(80));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    auto restored = rpc::Table::Restore(junk);
    (void)restored;
  }
}

}  // namespace
}  // namespace adn
